/**
 * @file
 * Tests for the campaign engine: thread pool, deterministic adaptive
 * sampling, artifact-cache accounting, serialization, checkpoints,
 * and the spec-file format.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "campaign/campaign.h"
#include "campaign/campaign_io.h"
#include "campaign/thread_pool.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"

namespace cyclone {
namespace {

std::shared_ptr<const CssCode>
surface13()
{
    return std::make_shared<const CssCode>(
        makeHgpCode(ClassicalCode::repetition(3), 3));
}

TaskSpec
surfaceTask(double p, size_t max_shots, double target_rel_err = 0.0)
{
    TaskSpec task;
    task.code = surface13();
    task.compileLatency = false;
    task.physicalError = p;
    task.rounds = 3;
    task.stop.chunkShots = 100;
    task.stop.chunksPerWave = 2;
    task.stop.maxShots = max_shots;
    task.stop.targetRelErr = target_rel_err;
    return task;
}

TEST(ThreadPool, RunsEverySubmittedJob)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        EXPECT_EQ(ThreadPool::workerIndex(), -1);
        for (int i = 0; i < 500; ++i)
            pool.submit([&] { ++count; });
        pool.waitIdle();
        EXPECT_EQ(count.load(), 500);
        // Jobs submitted from workers land on the submitter's deque.
        pool.submit([&] {
            EXPECT_GE(ThreadPool::workerIndex(), 0);
            pool.submit([&] { ++count; });
        });
        pool.waitIdle();
        EXPECT_EQ(count.load(), 501);
    }
}

TEST(Campaign, FixedBudgetRunsExactly)
{
    CampaignSpec spec;
    spec.seed = 11;
    spec.threads = 2;
    spec.tasks.push_back(surfaceTask(0.02, 500));
    const CampaignResult result = runCampaign(spec);
    ASSERT_EQ(result.tasks.size(), 1u);
    const TaskResult& t = result.tasks[0];
    EXPECT_TRUE(t.error.empty()) << t.error;
    EXPECT_EQ(t.logicalErrorRate.trials, 500u);
    EXPECT_EQ(t.decoder.decodes, 500u);
    EXPECT_FALSE(t.stoppedEarly);
    EXPECT_EQ(t.rounds, 3u);
    EXPECT_GT(t.demDetectors, 0u);
}

TEST(Campaign, DeterministicAcrossThreadCounts)
{
    CampaignSpec spec;
    spec.seed = 99;
    for (double p : {0.01, 0.03, 0.08})
        spec.tasks.push_back(surfaceTask(p, 600, 0.25));

    spec.threads = 1;
    const CampaignResult one = runCampaign(spec);
    spec.threads = 4;
    const CampaignResult four = runCampaign(spec);

    ASSERT_EQ(one.tasks.size(), four.tasks.size());
    for (size_t i = 0; i < one.tasks.size(); ++i) {
        EXPECT_EQ(one.tasks[i].logicalErrorRate.trials,
                  four.tasks[i].logicalErrorRate.trials)
            << "task " << i;
        EXPECT_EQ(one.tasks[i].logicalErrorRate.successes,
                  four.tasks[i].logicalErrorRate.successes)
            << "task " << i;
        EXPECT_EQ(one.tasks[i].chunks, four.tasks[i].chunks);
        // Decoder totals are sums over chunks, so they match too —
        // including the batch-pipeline counters (the memo is scoped
        // per chunk, never per worker).
        EXPECT_EQ(one.tasks[i].decoder.decodes,
                  four.tasks[i].decoder.decodes);
        EXPECT_EQ(one.tasks[i].decoder.bpConverged,
                  four.tasks[i].decoder.bpConverged);
        EXPECT_EQ(one.tasks[i].decoder.trivialShots,
                  four.tasks[i].decoder.trivialShots);
        EXPECT_EQ(one.tasks[i].decoder.memoHits,
                  four.tasks[i].decoder.memoHits);
        EXPECT_EQ(one.tasks[i].decoder.bpIterations,
                  four.tasks[i].decoder.bpIterations);
    }
}

TEST(Campaign, StagedPoolingIsDeterministicAndBitExact)
{
    // Pooling several chunks into one staged decode group is a pure
    // perf knob: staged groups are contiguous chunk-index slices of a
    // wave, so the estimate and every decoder counter must match at
    // any thread count — and the estimate must equal the unstaged
    // run's exactly (staging never changes a prediction).
    CampaignSpec unstaged;
    unstaged.seed = 99;
    unstaged.threads = 2;
    for (double p : {0.01, 0.03, 0.08})
        unstaged.tasks.push_back(surfaceTask(p, 600, 0.25));
    for (TaskSpec& t : unstaged.tasks)
        t.stop.chunksPerWave = 4;
    const CampaignResult plain = runCampaign(unstaged);

    CampaignSpec staged = unstaged;
    for (TaskSpec& t : staged.tasks)
        t.stop.stagingChunks = 2;
    staged.threads = 1;
    const CampaignResult one = runCampaign(staged);
    staged.threads = 4;
    const CampaignResult four = runCampaign(staged);

    ASSERT_EQ(one.tasks.size(), plain.tasks.size());
    for (size_t i = 0; i < one.tasks.size(); ++i) {
        // Staged vs unstaged: identical physics.
        EXPECT_EQ(one.tasks[i].logicalErrorRate.trials,
                  plain.tasks[i].logicalErrorRate.trials)
            << "task " << i;
        EXPECT_EQ(one.tasks[i].logicalErrorRate.successes,
                  plain.tasks[i].logicalErrorRate.successes)
            << "task " << i;
        EXPECT_EQ(plain.tasks[i].decoder.stagedChunks, 0u);
        EXPECT_GT(one.tasks[i].decoder.stagedChunks, 0u);

        // Staged at one thread vs staged at four: identical, down to
        // the memo counters (groups are sliced by chunk index, never
        // by worker).
        EXPECT_EQ(one.tasks[i].logicalErrorRate.trials,
                  four.tasks[i].logicalErrorRate.trials)
            << "task " << i;
        EXPECT_EQ(one.tasks[i].logicalErrorRate.successes,
                  four.tasks[i].logicalErrorRate.successes)
            << "task " << i;
        EXPECT_EQ(one.tasks[i].decoder.decodes,
                  four.tasks[i].decoder.decodes);
        EXPECT_EQ(one.tasks[i].decoder.memoHits,
                  four.tasks[i].decoder.memoHits);
        EXPECT_EQ(one.tasks[i].decoder.bpIterations,
                  four.tasks[i].decoder.bpIterations);
        EXPECT_EQ(one.tasks[i].decoder.stagedChunks,
                  four.tasks[i].decoder.stagedChunks);
        EXPECT_EQ(one.tasks[i].decoder.backend,
                  four.tasks[i].decoder.backend);
        EXPECT_FALSE(one.tasks[i].decoder.backend.empty());
    }
}

TEST(Campaign, EarlyStopHonorsRelativeErrorTarget)
{
    const double target = 0.25;
    CampaignSpec spec;
    spec.seed = 5;
    spec.threads = 2;
    spec.tasks.push_back(surfaceTask(0.08, 50000, target));
    const CampaignResult result = runCampaign(spec);
    const TaskResult& t = result.tasks[0];
    EXPECT_TRUE(t.error.empty()) << t.error;
    EXPECT_TRUE(t.stoppedEarly);
    EXPECT_LT(t.logicalErrorRate.trials, 50000u);
    EXPECT_GE(t.logicalErrorRate.successes, 8u);
    EXPECT_LE(t.wilson, target * t.logicalErrorRate.rate + 1e-12);
}

TEST(Campaign, AdaptiveUsesFewerShotsThanFixedAtEqualWidth)
{
    // Fig. 5-style sweep: several points of very different difficulty.
    // The fixed-budget baseline must give every point the budget the
    // hardest point needs; adaptive stops each point at its own
    // convergence, so the sweep total shrinks at equal CI target.
    const double target = 0.2;
    CampaignSpec adaptive;
    adaptive.seed = 42;
    adaptive.threads = 2;
    for (double p : {0.02, 0.05, 0.12})
        adaptive.tasks.push_back(surfaceTask(p, 30000, target));
    const CampaignResult a = runCampaign(adaptive);

    size_t hardest = 0;
    for (const TaskResult& t : a.tasks) {
        EXPECT_TRUE(t.error.empty()) << t.error;
        EXPECT_TRUE(t.stoppedEarly);
        EXPECT_LE(t.wilson, target * t.logicalErrorRate.rate + 1e-12);
        hardest = std::max(hardest, t.logicalErrorRate.trials);
    }

    CampaignSpec fixed = adaptive;
    for (TaskSpec& t : fixed.tasks) {
        t.stop.maxShots = hardest;
        t.stop.targetRelErr = 0.0;
    }
    const CampaignResult f = runCampaign(fixed);
    EXPECT_EQ(f.totalShots(), hardest * fixed.tasks.size());
    EXPECT_LT(a.totalShots(), f.totalShots());

    // The point that needed the full budget replays the same chunk
    // streams in the fixed run: identical estimate, not just close.
    for (size_t i = 0; i < a.tasks.size(); ++i) {
        if (a.tasks[i].logicalErrorRate.trials == hardest)
            EXPECT_EQ(a.tasks[i].logicalErrorRate.successes,
                      f.tasks[i].logicalErrorRate.successes);
    }
}

TEST(Campaign, CacheAccounting)
{
    // Tasks A and B are identical points; C differs only in p. All
    // three share one architecture compile; A and B share a DEM.
    CampaignSpec spec;
    spec.seed = 3;
    spec.threads = 2;
    auto code = surface13();
    for (double p : {0.02, 0.02, 0.05}) {
        TaskSpec task;
        task.code = code;
        task.architecture = Architecture::BaselineGrid;
        task.compileLatency = true;
        task.physicalError = p;
        task.rounds = 2;
        task.stop.maxShots = 100;
        spec.tasks.push_back(std::move(task));
    }
    const CampaignResult result = runCampaign(spec);
    for (const TaskResult& t : result.tasks) {
        EXPECT_TRUE(t.error.empty()) << t.error;
        EXPECT_GT(t.roundLatencyUs, 0.0);
    }
    EXPECT_EQ(result.cache.compileMisses, 1u);
    EXPECT_EQ(result.cache.compileHits, 2u);
    EXPECT_EQ(result.cache.demMisses, 2u);
    EXPECT_EQ(result.cache.demHits, 1u);
    // Identical tasks get distinct seeds, not identical streams.
    EXPECT_NE(result.tasks[0].contentHash, result.tasks[1].contentHash);
}

TEST(Campaign, JsonAndCsvOutputs)
{
    CampaignSpec spec;
    spec.name = "io-check";
    spec.seed = 8;
    spec.threads = 2;
    spec.tasks.push_back(surfaceTask(0.05, 200));
    spec.tasks.back().id = "point-a";
    const CampaignResult result = runCampaign(spec);

    const std::string json = campaignResultToJson(result);
    EXPECT_NE(json.find("\"campaign\": \"io-check\""), std::string::npos);
    EXPECT_NE(json.find("\"id\": \"point-a\""), std::string::npos);
    EXPECT_NE(json.find("\"shots\": 200"), std::string::npos);
    EXPECT_NE(json.find("\"trivial_fraction\""), std::string::npos);
    EXPECT_NE(json.find("\"memo_hit_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"mean_bp_iterations\""), std::string::npos);
    EXPECT_NE(json.find("\"staged_chunks\""), std::string::npos);
    EXPECT_NE(json.find("\"backend\": \""), std::string::npos);
    EXPECT_EQ(json.find("\"error\""), std::string::npos);
    // Cache byte/store accounting and spool stats are part of the
    // document even for purely local runs (zeros, but present).
    EXPECT_NE(json.find("\"compile_store_hits\""), std::string::npos);
    EXPECT_NE(json.find("\"compile_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"dem_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"spool\": {\"shards_published\": 0"),
              std::string::npos);

    const std::string csv = campaignResultToCsv(result);
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 1u + result.tasks.size());
    EXPECT_NE(csv.find("point-a"), std::string::npos);
    EXPECT_NE(csv.find("staged_chunks,backend,"), std::string::npos);
}

TEST(Campaign, CheckpointRoundtrip)
{
    const std::string path = "test_campaign_checkpoint.tmp";
    CampaignSpec spec;
    spec.seed = 21;
    spec.threads = 2;
    spec.tasks.push_back(surfaceTask(0.03, 300));
    spec.tasks.push_back(surfaceTask(0.06, 300));

    const CampaignResult first = runCampaign(spec);
    ASSERT_TRUE(saveCheckpoint(first, path));

    CampaignCheckpoint checkpoint;
    ASSERT_TRUE(loadCheckpoint(path, checkpoint));
    EXPECT_EQ(checkpoint.tasks.size(), 2u);

    const CampaignResult resumed = runCampaign(spec, &checkpoint);
    for (size_t i = 0; i < resumed.tasks.size(); ++i) {
        EXPECT_TRUE(resumed.tasks[i].fromCheckpoint);
        EXPECT_EQ(resumed.tasks[i].logicalErrorRate.successes,
                  first.tasks[i].logicalErrorRate.successes);
        EXPECT_EQ(resumed.tasks[i].logicalErrorRate.trials,
                  first.tasks[i].logicalErrorRate.trials);
        EXPECT_EQ(resumed.tasks[i].decoder.decodes,
                  first.tasks[i].decoder.decodes);
        EXPECT_EQ(resumed.tasks[i].decoder.trivialShots,
                  first.tasks[i].decoder.trivialShots);
        EXPECT_EQ(resumed.tasks[i].decoder.memoHits,
                  first.tasks[i].decoder.memoHits);
        EXPECT_EQ(resumed.tasks[i].decoder.bpIterations,
                  first.tasks[i].decoder.bpIterations);
    }
    // Nothing re-sampled, so the caches never got touched.
    EXPECT_EQ(resumed.cache.demMisses, 0u);
    EXPECT_EQ(resumed.totalShots(), first.totalShots());

    // Changing a task's definition invalidates only that task.
    CampaignSpec edited = spec;
    edited.tasks[1].physicalError = 0.07;
    const CampaignResult partial = runCampaign(edited, &checkpoint);
    EXPECT_TRUE(partial.tasks[0].fromCheckpoint);
    EXPECT_FALSE(partial.tasks[1].fromCheckpoint);

    // The staging knob is a perf knob, not physics: changing it must
    // not invalidate checkpointed results.
    CampaignSpec restaged = spec;
    for (TaskSpec& t : restaged.tasks)
        t.stop.stagingChunks = 3;
    const CampaignResult reused = runCampaign(restaged, &checkpoint);
    EXPECT_TRUE(reused.tasks[0].fromCheckpoint);
    EXPECT_TRUE(reused.tasks[1].fromCheckpoint);
    // Backend names describe the host that ran the shots; results
    // replayed from a checkpoint do not claim one.
    EXPECT_TRUE(reused.tasks[0].decoder.backend.empty());

    std::remove(path.c_str());
}

/**
 * One parameterized matrix over every checkpoint format generation:
 * 14 fields (pre-batch-pipeline), 17 (pre-wave-kernel), 20
 * (pre-batched-OSD), 22 (pre-staging), 23 (pre-streaming) and 33
 * (current). Fields absent from an old format must load as zero; any
 * other field count must be rejected.
 */
class CheckpointFormat : public ::testing::TestWithParam<int>
{
};

TEST_P(CheckpointFormat, LoadsEveryFormatGeneration)
{
    const int fields = GetParam();
    // The full 33-field line, split so each generation is a prefix.
    const char* tokens[33] = {
        "00000000deadbeef", // content hash
        "6",                // rounds
        "12.5",             // round latency us
        "10",               // dem detectors
        "20",               // dem mechanisms
        "1000",             // shots
        "7",                // failures
        "4",                // chunks
        "1",                // stopped early
        "1000",             // decodes
        "950",              // bp converged
        "50",               // osd invocations
        "2",                // osd failures
        "1.25",             // sample seconds
        "300",              // trivial shots
        "100",              // memo hits
        "4000",             // bp iterations
        "11",               // wave groups
        "88",               // wave lane slots
        "70",               // wave lanes filled
        "9",                // osd batch groups
        "1234",             // osd shared pivots
        "5",                // staged chunks
        "1",                // streamed flag
        "1000",             // stream windows
        "3",                // stream deadline misses
        "2500.5",           // stream latency sum us
        "42.25",            // stream latency max us
        "8.5",              // stream p50 us
        "30.0",             // stream p99 us
        "41.0",             // stream p999 us
        "1024",             // stream slab slots
        "1000",             // stream slab filled
    };
    std::string text = "cyclone-campaign-checkpoint v1\ntask";
    // Counts beyond the current format (the rejection cases) append
    // filler tokens past the known 33.
    for (int f = 0; f < fields; ++f)
        text += std::string(" ") + (f < 33 ? tokens[f] : "0");
    text += "\n";

    const std::string path = "test_checkpoint_format.tmp";
    ASSERT_TRUE(writeTextFile(path, text));
    CampaignCheckpoint checkpoint;
    const bool loaded = loadCheckpoint(path, checkpoint);
    std::remove(path.c_str());

    if (fields != 14 && fields != 17 && fields != 20 && fields != 22 &&
        fields != 23 && fields != 33) {
        EXPECT_FALSE(loaded) << "fields=" << fields;
        return;
    }
    ASSERT_TRUE(loaded) << "fields=" << fields;
    ASSERT_EQ(checkpoint.tasks.size(), 1u);
    const TaskResult& t = checkpoint.tasks.begin()->second;
    EXPECT_EQ(t.contentHash, 0xdeadbeefULL);
    EXPECT_EQ(t.rounds, 6u);
    EXPECT_DOUBLE_EQ(t.roundLatencyUs, 12.5);
    EXPECT_EQ(t.demDetectors, 10u);
    EXPECT_EQ(t.demMechanisms, 20u);
    EXPECT_EQ(t.logicalErrorRate.trials, 1000u);
    EXPECT_EQ(t.logicalErrorRate.successes, 7u);
    EXPECT_EQ(t.chunks, 4u);
    EXPECT_TRUE(t.stoppedEarly);
    EXPECT_TRUE(t.fromCheckpoint);
    EXPECT_EQ(t.decoder.decodes, 1000u);
    EXPECT_EQ(t.decoder.bpConverged, 950u);
    EXPECT_EQ(t.decoder.osdInvocations, 50u);
    EXPECT_EQ(t.decoder.osdFailures, 2u);
    EXPECT_DOUBLE_EQ(t.sampleSeconds, 1.25);

    const bool hasBatch = fields >= 17;
    EXPECT_EQ(t.decoder.trivialShots, hasBatch ? 300u : 0u);
    EXPECT_EQ(t.decoder.memoHits, hasBatch ? 100u : 0u);
    EXPECT_EQ(t.decoder.bpIterations, hasBatch ? 4000u : 0u);
    const bool hasWave = fields >= 20;
    EXPECT_EQ(t.decoder.waveGroups, hasWave ? 11u : 0u);
    EXPECT_EQ(t.decoder.waveLaneSlots, hasWave ? 88u : 0u);
    EXPECT_EQ(t.decoder.waveLanesFilled, hasWave ? 70u : 0u);
    const bool hasOsdBatch = fields >= 22;
    EXPECT_EQ(t.decoder.osdBatchGroups, hasOsdBatch ? 9u : 0u);
    EXPECT_EQ(t.decoder.osdSharedPivots, hasOsdBatch ? 1234u : 0u);
    const bool hasStaging = fields >= 23;
    EXPECT_EQ(t.decoder.stagedChunks, hasStaging ? 5u : 0u);
    const bool hasStreaming = fields >= 33;
    EXPECT_EQ(t.streamed, hasStreaming);
    EXPECT_EQ(t.stream.windows, hasStreaming ? 1000u : 0u);
    EXPECT_EQ(t.stream.deadlineMisses, hasStreaming ? 3u : 0u);
    EXPECT_DOUBLE_EQ(t.stream.latencySumUs,
                     hasStreaming ? 2500.5 : 0.0);
    EXPECT_DOUBLE_EQ(t.stream.latencyMaxUs,
                     hasStreaming ? 42.25 : 0.0);
    // Percentiles restore verbatim: the histogram behind them is not
    // checkpointed.
    EXPECT_DOUBLE_EQ(t.stream.p50Us, hasStreaming ? 8.5 : 0.0);
    EXPECT_DOUBLE_EQ(t.stream.p99Us, hasStreaming ? 30.0 : 0.0);
    EXPECT_DOUBLE_EQ(t.stream.p999Us, hasStreaming ? 41.0 : 0.0);
    EXPECT_EQ(t.stream.slabSlots, hasStreaming ? 1024u : 0u);
    EXPECT_EQ(t.stream.slabFilled, hasStreaming ? 1000u : 0u);
    // The backend string is deliberately never checkpointed.
    EXPECT_TRUE(t.decoder.backend.empty());
}

INSTANTIATE_TEST_SUITE_P(FormatGenerations, CheckpointFormat,
                         ::testing::Values(14, 17, 20, 22, 23, 33,
                                           // rejected counts
                                           13, 15, 21, 24, 32, 34));

TEST(Campaign, SpecParsingExpandsSweeps)
{
    const char* text = R"(
name = sweep
seed = 123
threads = 2

[task]
id = pt
code = bb72
arch = cyclone, baseline
p = 1e-3, 2e-3, 4e-3
max_shots = 50
target_rel_err = 0.1
staging_chunks = 4

[task]
code = surface3
arch = none
latency_us = 100
p = 5e-3
)";
    const CampaignSpec spec = parseCampaignSpec(text);
    EXPECT_EQ(spec.name, "sweep");
    EXPECT_EQ(spec.seed, 123u);
    EXPECT_EQ(spec.threads, 2u);
    ASSERT_EQ(spec.tasks.size(), 7u);
    EXPECT_EQ(spec.tasks[0].id, "pt/cyclone/p=0.001");
    EXPECT_EQ(spec.tasks[0].architecture, Architecture::Cyclone);
    EXPECT_TRUE(spec.tasks[0].compileLatency);
    EXPECT_EQ(spec.tasks[3].architecture, Architecture::BaselineGrid);
    EXPECT_DOUBLE_EQ(spec.tasks[4].physicalError, 2e-3);
    EXPECT_EQ(spec.tasks[0].stop.maxShots, 50u);
    EXPECT_DOUBLE_EQ(spec.tasks[0].stop.targetRelErr, 0.1);
    EXPECT_EQ(spec.tasks[0].stop.stagingChunks, 4u);
    const TaskSpec& explicitTask = spec.tasks[6];
    EXPECT_FALSE(explicitTask.compileLatency);
    EXPECT_DOUBLE_EQ(explicitTask.roundLatencyUs, 100.0);
    EXPECT_EQ(explicitTask.codeName, "surface3");
    EXPECT_EQ(explicitTask.stop.stagingChunks, 1u);

    EXPECT_THROW(parseCampaignSpec("[task]\narch = warp\ncode = bb72\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCampaignSpec(
                     "[task]\ncode = bb72\nstaging_chunks = 0\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCampaignSpec(
                     "[task]\ncode = bb72\nstaging_chunks = -2\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCampaignSpec("nonsense\n"), std::runtime_error);
    EXPECT_THROW(parseCampaignSpec(""), std::runtime_error);
}

TEST(Campaign, SpecParsesSwapCapacityAndIdleNoiseKeys)
{
    const char* text = R"(
[task]
code = bb72
arch = cyclone
swap = ion
grid-capacity = 7
idle_noise = per-qubit
max_shots = 10
)";
    const CampaignSpec spec = parseCampaignSpec(text);
    ASSERT_EQ(spec.tasks.size(), 1u);
    EXPECT_EQ(spec.tasks[0].swap, SwapKind::IonSwap);
    EXPECT_EQ(spec.tasks[0].gridCapacity, 7u);
    EXPECT_EQ(spec.tasks[0].idleNoise, IdleNoiseMode::PerQubitSchedule);

    // Underscore alias and defaults.
    const CampaignSpec alias = parseCampaignSpec(
        "[task]\ncode = bb72\nswap = gate\ngrid_capacity = 3\n"
        "idle_noise = uniform\n");
    EXPECT_EQ(alias.tasks[0].swap, SwapKind::GateSwap);
    EXPECT_EQ(alias.tasks[0].gridCapacity, 3u);
    EXPECT_EQ(alias.tasks[0].idleNoise, IdleNoiseMode::UniformLatency);

    EXPECT_THROW(parseCampaignSpec("[task]\ncode = bb72\nswap = warp\n"),
                 std::runtime_error);
    EXPECT_THROW(
        parseCampaignSpec("[task]\ncode = bb72\ngrid-capacity = 0\n"),
        std::runtime_error);
    // stoull would silently wrap a negative value; it must throw.
    EXPECT_THROW(
        parseCampaignSpec("[task]\ncode = bb72\ngrid-capacity = -3\n"),
        std::runtime_error);
    EXPECT_THROW(
        parseCampaignSpec("[task]\ncode = bb72\nidle_noise = maybe\n"),
        std::runtime_error);
}

TEST(Campaign, SwapAndCapacityReachTheCompiler)
{
    // Fig. 13 / Fig. 21 mechanics from spec keys alone: capacity and
    // swap kind change the compiled latency, and distinct settings get
    // distinct compile-cache entries.
    CampaignSpec spec;
    spec.seed = 31;
    spec.threads = 2;
    auto code = surface13();
    for (size_t capacity : {size_t(3), size_t(5)}) {
        TaskSpec task;
        task.code = code;
        task.architecture = Architecture::BaselineGrid;
        task.compileLatency = true;
        task.gridCapacity = capacity;
        task.physicalError = 0.02;
        task.rounds = 2;
        task.stop.maxShots = 100;
        spec.tasks.push_back(std::move(task));
    }
    for (SwapKind swap : {SwapKind::GateSwap, SwapKind::IonSwap}) {
        TaskSpec task;
        task.code = code;
        task.architecture = Architecture::Cyclone;
        task.compileLatency = true;
        task.swap = swap;
        task.physicalError = 0.02;
        task.rounds = 2;
        task.stop.maxShots = 100;
        spec.tasks.push_back(std::move(task));
    }
    const CampaignResult result = runCampaign(spec);
    for (const TaskResult& t : result.tasks)
        EXPECT_TRUE(t.error.empty()) << t.error;
    EXPECT_NE(result.tasks[0].roundLatencyUs,
              result.tasks[1].roundLatencyUs);
    EXPECT_NE(result.tasks[2].roundLatencyUs,
              result.tasks[3].roundLatencyUs);
    // Four distinct (arch, swap, capacity) points: no compile sharing.
    EXPECT_EQ(result.cache.compileMisses, 4u);
    // The compile profile surfaces per task.
    EXPECT_GT(result.tasks[0].compileMakespanUs, 0.0);
    EXPECT_GT(result.tasks[0].compileBreakdown.total(), 0.0);
    EXPECT_GT(result.tasks[0].compileParallelFraction, 0.0);
}

TEST(Campaign, PerQubitIdleRunsEndToEndFromSpecText)
{
    // The acceptance path: compile -> IR -> per-qubit twirls -> DEM ->
    // decode, selected from the INI.
    const char* text = R"(
name = per-qubit-e2e
seed = 13
threads = 2

[task]
code = surface3
arch = cyclone
idle_noise = per-qubit
p = 5e-3
rounds = 3
max_shots = 200
chunk_shots = 100
)";
    const CampaignResult result = runCampaign(parseCampaignSpec(text));
    ASSERT_EQ(result.tasks.size(), 1u);
    const TaskResult& t = result.tasks[0];
    EXPECT_TRUE(t.error.empty()) << t.error;
    EXPECT_EQ(t.logicalErrorRate.trials, 200u);
    EXPECT_GT(t.roundLatencyUs, 0.0);
    EXPECT_GT(t.demMechanisms, 0u);
    EXPECT_EQ(t.decoder.decodes, 200u);
}

TEST(Campaign, PerQubitIdleWithoutCompileFails)
{
    CampaignSpec spec;
    spec.threads = 1;
    TaskSpec task = surfaceTask(0.02, 100);
    task.idleNoise = IdleNoiseMode::PerQubitSchedule;
    spec.tasks.push_back(std::move(task));
    const CampaignResult result = runCampaign(spec);
    ASSERT_EQ(result.tasks.size(), 1u);
    EXPECT_FALSE(result.tasks[0].error.empty());
    EXPECT_NE(result.tasks[0].error.find("per-qubit"),
              std::string::npos);
}

TEST(Campaign, PerQubitIdleDegeneratesToUniformOnEqualWindows)
{
    // Identical idle windows must reproduce the uniform-latency model
    // exactly: same DEM, same chunk streams, same counts.
    const double latency = 60000.0;
    const double p = 0.004;
    auto code = surface13();

    CampaignSpec uniform;
    uniform.seed = 77;
    uniform.threads = 2;
    {
        TaskSpec task;
        task.code = code;
        task.compileLatency = false;
        task.roundLatencyUs = latency;
        task.physicalError = p;
        task.rounds = 3;
        task.stop.maxShots = 400;
        task.stop.chunkShots = 100;
        uniform.tasks.push_back(std::move(task));
    }

    CampaignSpec perQubit = uniform;
    {
        TaskSpec& task = perQubit.tasks[0];
        task.idleNoise = IdleNoiseMode::PerQubitSchedule;
        const double t_coh = coherenceTimeSeconds(p);
        task.perQubitIdle.assign(
            code->numQubits(), twirlDecoherence(latency, t_coh, t_coh));
    }

    const CampaignResult a = runCampaign(uniform);
    const CampaignResult b = runCampaign(perQubit);
    ASSERT_TRUE(a.tasks[0].error.empty()) << a.tasks[0].error;
    ASSERT_TRUE(b.tasks[0].error.empty()) << b.tasks[0].error;
    EXPECT_EQ(a.tasks[0].demMechanisms, b.tasks[0].demMechanisms);
    EXPECT_EQ(a.tasks[0].logicalErrorRate.trials,
              b.tasks[0].logicalErrorRate.trials);
    EXPECT_EQ(a.tasks[0].logicalErrorRate.successes,
              b.tasks[0].logicalErrorRate.successes);
    EXPECT_EQ(a.tasks[0].decoder.bpIterations,
              b.tasks[0].decoder.bpIterations);
}

TEST(Campaign, ResolvesSurfaceCodeNames)
{
    const CssCode code = resolveCampaignCode("surface3");
    EXPECT_EQ(code.numQubits(), 13u);
    EXPECT_THROW(resolveCampaignCode("surfaceX"), std::exception);
    EXPECT_THROW(resolveCampaignCode("nope"), std::exception);
}

TEST(Campaign, BadSpecsThrowBeforeAnyWorkLaunches)
{
    CampaignSpec spec;
    spec.tasks.push_back(surfaceTask(0.02, 50));
    spec.tasks[0].code = nullptr;
    spec.tasks[0].codeName = "";
    EXPECT_THROW(runCampaign(spec), std::invalid_argument);
    spec.tasks[0].codeName = "not-a-code";
    EXPECT_THROW(runCampaign(spec), std::exception);
}

TEST(Campaign, SpecParsesSpoolAndShardKeys)
{
    const CampaignSpec spec = parseCampaignSpec(
        "name = dist\n"
        "spool = /tmp/my-spool\n"
        "workers = 3\n"
        "lease_seconds = 12.5\n"
        "[task]\n"
        "code = surface3\n"
        "shard_chunks = 8\n");
    EXPECT_EQ(spec.spool, "/tmp/my-spool");
    EXPECT_EQ(spec.workers, 3u);
    EXPECT_EQ(spec.leaseSeconds, 12.5);
    ASSERT_EQ(spec.tasks.size(), 1u);
    EXPECT_EQ(spec.tasks[0].stop.shardChunks, 8u);

    EXPECT_THROW(parseCampaignSpec("name = x\nlease_seconds = 0\n"
                                   "[task]\ncode = surface3\n"),
                 std::runtime_error);
}

TEST(Campaign, ShardChunksIsAPerfKnobNotAnIdentity)
{
    // Like staging_chunks, shard_chunks only changes how distributed
    // waves are sliced — never which results come out — so it must
    // not perturb the task content hash that keys checkpoints.
    CampaignSpec a;
    a.tasks.push_back(surfaceTask(0.02, 100));
    CampaignSpec b = a;
    b.tasks[0].stop.shardChunks = 16;
    const uint64_t ha = resolveTaskIdentities(a)[0].contentHash;
    const uint64_t hb = resolveTaskIdentities(b)[0].contentHash;
    EXPECT_EQ(ha, hb);
}

TEST(Campaign, SpecRejectsUnknownKeysWithLineNumbers)
{
    // New campaign/task keys must never be silently ignored: a typo'd
    // "spool" or "shard_chunks" would otherwise quietly run the whole
    // sweep in the wrong mode.
    try {
        parseCampaignSpec("name = x\nspoool = /tmp/z\n"
                          "[task]\ncode = surface3\n");
        FAIL() << "expected unknown-key error";
    } catch (const std::runtime_error& ex) {
        EXPECT_NE(std::string(ex.what()).find("line 2"),
                  std::string::npos)
            << ex.what();
        EXPECT_NE(std::string(ex.what()).find("spoool"),
                  std::string::npos)
            << ex.what();
    }
    try {
        parseCampaignSpec("name = x\n[task]\ncode = surface3\n"
                          "shard_chunk = 4\n");
        FAIL() << "expected unknown-key error";
    } catch (const std::runtime_error& ex) {
        EXPECT_NE(std::string(ex.what()).find("line 4"),
                  std::string::npos)
            << ex.what();
    }
}

TEST(Campaign, SpecParsesStreamingKeys)
{
    const CampaignSpec spec = parseCampaignSpec(
        "name = serve\n"
        "[task]\n"
        "code = surface3\n"
        "streaming = on\n"
        "streams = 12\n"
        "stream_flush = deadline\n"
        "stream_deadline_us = 250\n"
        "stream_flush_after_us = 80\n");
    ASSERT_EQ(spec.tasks.size(), 1u);
    const StreamSpec& s = spec.tasks[0].stream;
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.streams, 12u);
    EXPECT_TRUE(s.deadlineFlush);
    EXPECT_DOUBLE_EQ(s.deadlineUs, 250.0);
    EXPECT_DOUBLE_EQ(s.flushAfterUs, 80.0);

    // Defaults: off, full-wave, auto deadline.
    const CampaignSpec plain =
        parseCampaignSpec("name = x\n[task]\ncode = surface3\n");
    EXPECT_FALSE(plain.tasks[0].stream.enabled);
    EXPECT_FALSE(plain.tasks[0].stream.deadlineFlush);
    EXPECT_DOUBLE_EQ(plain.tasks[0].stream.deadlineUs, 0.0);

    EXPECT_THROW(parseCampaignSpec("name = x\n[task]\n"
                                   "code = surface3\nstreaming = up\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCampaignSpec("name = x\n[task]\n"
                                   "code = surface3\nstreams = 0\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCampaignSpec("name = x\n[task]\n"
                                   "code = surface3\n"
                                   "stream_flush = sometimes\n"),
                 std::runtime_error);
}

TEST(Campaign, StreamingIsAServingKnobNotAnIdentity)
{
    // Streaming changes how shots are served, never what comes out:
    // the content hash that keys checkpoints must ignore it.
    CampaignSpec a;
    a.tasks.push_back(surfaceTask(0.02, 100));
    CampaignSpec b = a;
    b.tasks[0].stream.enabled = true;
    b.tasks[0].stream.streams = 16;
    b.tasks[0].stream.deadlineFlush = true;
    const uint64_t ha = resolveTaskIdentities(a)[0].contentHash;
    const uint64_t hb = resolveTaskIdentities(b)[0].contentHash;
    EXPECT_EQ(ha, hb);
}

TEST(Campaign, StreamedCampaignBitIdenticalToOffline)
{
    // The whole engine path: a streamed run must produce exactly the
    // offline run's shot/failure counts at any stream count — the
    // end-to-end form of the decoder-level bit-identity guarantee —
    // while reporting streaming telemetry.
    CampaignSpec offline;
    offline.seed = 31;
    offline.threads = 2;
    offline.tasks.push_back(surfaceTask(0.03, 400));
    offline.tasks.push_back(surfaceTask(0.06, 400, 0.25));
    // A real round period, so the auto deadline (rounds x latency)
    // is meaningful. Set in both specs: it feeds the idle-noise
    // model, and the comparison needs identical physics.
    for (TaskSpec& t : offline.tasks)
        t.roundLatencyUs = 12.0;
    const CampaignResult want = runCampaign(offline);

    CampaignSpec streamed = offline;
    for (TaskSpec& t : streamed.tasks) {
        t.stream.enabled = true;
        t.stream.streams = 5;
        t.stop.stagingChunks = 2;
    }
    const CampaignResult got = runCampaign(streamed);

    ASSERT_EQ(got.tasks.size(), want.tasks.size());
    for (size_t i = 0; i < got.tasks.size(); ++i) {
        EXPECT_TRUE(got.tasks[i].error.empty()) << got.tasks[i].error;
        EXPECT_EQ(got.tasks[i].logicalErrorRate.trials,
                  want.tasks[i].logicalErrorRate.trials)
            << "task " << i;
        EXPECT_EQ(got.tasks[i].logicalErrorRate.successes,
                  want.tasks[i].logicalErrorRate.successes)
            << "task " << i;
        EXPECT_EQ(got.tasks[i].chunks, want.tasks[i].chunks);
        EXPECT_EQ(got.tasks[i].stoppedEarly, want.tasks[i].stoppedEarly);

        EXPECT_FALSE(want.tasks[i].streamed);
        EXPECT_TRUE(got.tasks[i].streamed);
        const StreamDecodeStats& s = got.tasks[i].stream;
        EXPECT_EQ(s.windows, got.tasks[i].logicalErrorRate.trials);
        EXPECT_GT(s.roundsPushed, s.windows);
        EXPECT_GT(s.slabSlots, 0u);
        EXPECT_GT(s.slabFilled, 0u);
        EXPECT_GT(s.deadlineUs, 0.0)
            << "deadline must default to the window period";
        EXPECT_GT(s.p50Us, 0.0);
        EXPECT_GE(s.p99Us, s.p50Us);
        EXPECT_GE(s.p999Us, s.p99Us);
        EXPECT_GE(s.latencyMaxUs, s.p999Us * 0.8);
    }

    // And streamed results are thread-count independent too.
    streamed.threads = 4;
    const CampaignResult wide = runCampaign(streamed);
    for (size_t i = 0; i < wide.tasks.size(); ++i) {
        EXPECT_EQ(wide.tasks[i].logicalErrorRate.successes,
                  got.tasks[i].logicalErrorRate.successes);
        EXPECT_EQ(wide.tasks[i].stream.windows,
                  got.tasks[i].stream.windows);
    }
}

TEST(Campaign, StreamedTaskSurvivesCheckpointRoundtrip)
{
    const std::string path = "test_campaign_stream_checkpoint.tmp";
    CampaignSpec spec;
    spec.seed = 77;
    spec.threads = 2;
    spec.tasks.push_back(surfaceTask(0.04, 300));
    spec.tasks[0].stream.enabled = true;
    spec.tasks[0].stream.streams = 4;

    const CampaignResult first = runCampaign(spec);
    ASSERT_TRUE(first.tasks[0].streamed);
    ASSERT_TRUE(saveCheckpoint(first, path));

    CampaignCheckpoint checkpoint;
    ASSERT_TRUE(loadCheckpoint(path, checkpoint));
    const CampaignResult resumed = runCampaign(spec, &checkpoint);
    std::remove(path.c_str());

    ASSERT_EQ(resumed.tasks.size(), 1u);
    const TaskResult& t = resumed.tasks[0];
    EXPECT_TRUE(t.fromCheckpoint);
    EXPECT_TRUE(t.streamed);
    EXPECT_EQ(t.stream.windows, first.tasks[0].stream.windows);
    EXPECT_EQ(t.stream.deadlineMisses,
              first.tasks[0].stream.deadlineMisses);
    EXPECT_NEAR(t.stream.latencySumUs,
                first.tasks[0].stream.latencySumUs,
                1e-9 * first.tasks[0].stream.latencySumUs + 1e-4);
    EXPECT_NEAR(t.stream.latencyMaxUs,
                first.tasks[0].stream.latencyMaxUs, 1e-4);
    EXPECT_NEAR(t.stream.p50Us, first.tasks[0].stream.p50Us, 1e-4);
    EXPECT_NEAR(t.stream.p99Us, first.tasks[0].stream.p99Us, 1e-4);
    EXPECT_EQ(t.stream.slabSlots, first.tasks[0].stream.slabSlots);
    EXPECT_EQ(t.stream.slabFilled, first.tasks[0].stream.slabFilled);
}

TEST(Campaign, StreamingStatsReachJsonAndCsv)
{
    CampaignSpec spec;
    spec.name = "stream-io";
    spec.seed = 5;
    spec.threads = 2;
    spec.tasks.push_back(surfaceTask(0.05, 200));
    spec.tasks[0].stream.enabled = true;
    spec.tasks[0].stream.streams = 3;
    const CampaignResult result = runCampaign(spec);

    const std::string json = campaignResultToJson(result);
    EXPECT_NE(json.find("\"streaming\": {\"windows\": 200"),
              std::string::npos);
    EXPECT_NE(json.find("\"latency_p50_us\""), std::string::npos);
    EXPECT_NE(json.find("\"latency_p99_us\""), std::string::npos);
    EXPECT_NE(json.find("\"slab_occupancy\""), std::string::npos);
    EXPECT_NE(json.find("\"deadline_misses\""), std::string::npos);
    EXPECT_NE(json.find("\"flushes_full\""), std::string::npos);

    const std::string csv = campaignResultToCsv(result);
    EXPECT_NE(csv.find("stream_windows,stream_p50_us"),
              std::string::npos);
    EXPECT_NE(csv.find("stream_slab_occupancy"), std::string::npos);

    // An offline task emits no streaming JSON object.
    CampaignSpec plain = spec;
    plain.tasks[0].stream.enabled = false;
    const std::string plainJson =
        campaignResultToJson(runCampaign(plain));
    EXPECT_EQ(plainJson.find("\"streaming\""), std::string::npos);
}

TEST(Campaign, SpecNumericErrorsNameLineAndKey)
{
    // A malformed count must fail naming the offending line AND key —
    // "bad number" alone sends spec authors grepping.
    try {
        parseCampaignSpec("name = x\n[task]\ncode = surface3\n"
                          "staging_chunks = banana\n");
        FAIL() << "expected numeric-diagnostic error";
    } catch (const std::runtime_error& ex) {
        const std::string what = ex.what();
        EXPECT_NE(what.find("line 4"), std::string::npos) << what;
        EXPECT_NE(what.find("staging_chunks"), std::string::npos)
            << what;
        EXPECT_NE(what.find("banana"), std::string::npos) << what;
    }

    // Trailing garbage must be rejected, not silently truncated —
    // std::stoull would happily read "12abc" as 12.
    try {
        parseCampaignSpec("name = x\n[task]\ncode = surface3\n"
                          "rounds = 12abc\n");
        FAIL() << "expected trailing-garbage error";
    } catch (const std::runtime_error& ex) {
        const std::string what = ex.what();
        EXPECT_NE(what.find("line 4"), std::string::npos) << what;
        EXPECT_NE(what.find("rounds"), std::string::npos) << what;
    }

    // Negative counts (stoull would wrap them to huge values).
    try {
        parseCampaignSpec("name = x\nthreads = -2\n");
        FAIL() << "expected negative-count error";
    } catch (const std::runtime_error& ex) {
        const std::string what = ex.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("threads"), std::string::npos) << what;
    }

    // Out-of-range reals keep the same diagnostic shape.
    try {
        parseCampaignSpec("name = x\n[task]\ncode = surface3\n"
                          "latency_us = 1e999\n");
        FAIL() << "expected out-of-range error";
    } catch (const std::runtime_error& ex) {
        const std::string what = ex.what();
        EXPECT_NE(what.find("line 4"), std::string::npos) << what;
        EXPECT_NE(what.find("latency_us"), std::string::npos) << what;
    }

    // Bad items inside a p-list get the list's line and key too.
    try {
        parseCampaignSpec("name = x\n[task]\ncode = surface3\n"
                          "p = 1e-3, oops, 4e-3\n");
        FAIL() << "expected p-list error";
    } catch (const std::runtime_error& ex) {
        const std::string what = ex.what();
        EXPECT_NE(what.find("line 4"), std::string::npos) << what;
        EXPECT_NE(what.find("oops"), std::string::npos) << what;
    }
}

TEST(Campaign, SpecRejectsDuplicateTaskIds)
{
    // Two explicit duplicates: the error names the clashing id and
    // both offending [task] lines.
    try {
        parseCampaignSpec("name = x\n"
                          "[task]\n"
                          "id = point\n"
                          "code = surface3\n"
                          "[task]\n"
                          "id = point\n"
                          "code = surface3\n");
        FAIL() << "expected duplicate-id error";
    } catch (const std::runtime_error& ex) {
        const std::string what = ex.what();
        EXPECT_NE(what.find("duplicate task id 'point'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("line 5"), std::string::npos) << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    }

    // An explicit id colliding with another task's auto id
    // ("task<N>") is caught too.
    EXPECT_THROW(parseCampaignSpec("name = x\n"
                                   "[task]\n"
                                   "code = surface3\n"
                                   "[task]\n"
                                   "id = task0\n"
                                   "code = surface3\n"),
                 std::runtime_error);

    // Sweep-expanded ids stay distinct, so sweeps still parse.
    const CampaignSpec ok = parseCampaignSpec(
        "name = x\n[task]\nid = s\ncode = surface3\n"
        "p = 1e-3, 2e-3\n");
    EXPECT_EQ(ok.tasks.size(), 2u);
}

} // namespace
} // namespace cyclone
