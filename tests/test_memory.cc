/**
 * @file
 * Integration tests for the Monte-Carlo memory experiment runner.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "memory/memory_experiment.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

CssCode
surface13()
{
    return makeHgpCode(ClassicalCode::repetition(3), 3);
}

TEST(MemoryExperiment, NoNoiseNoFailures)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 50;
    cfg.physicalError = 0.0;
    cfg.rounds = 3;
    auto result = runZMemoryExperiment(code, sched, cfg);
    EXPECT_EQ(result.logicalErrorRate.successes, 0u);
    EXPECT_EQ(result.logicalErrorRate.trials, 50u);
    EXPECT_EQ(result.decoder.decodes, 50u);
}

TEST(MemoryExperiment, LerIncreasesWithPhysicalError)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    double previous = -1.0;
    for (double p : {0.002, 0.02, 0.08}) {
        MemoryExperimentConfig cfg;
        cfg.shots = 600;
        cfg.physicalError = p;
        cfg.rounds = 3;
        cfg.seed = 77;
        auto result = runZMemoryExperiment(code, sched, cfg);
        EXPECT_GE(result.logicalErrorRate.rate, previous)
            << "LER not monotone at p = " << p;
        previous = result.logicalErrorRate.rate;
    }
    EXPECT_GT(previous, 0.0);
}

TEST(MemoryExperiment, LatencyRaisesLer)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig fast;
    fast.shots = 800;
    fast.physicalError = 2e-3;
    fast.rounds = 3;
    fast.seed = 99;
    MemoryExperimentConfig slow = fast;
    slow.roundLatencyUs = 400000.0; // 0.4 s per round
    auto fast_result = runZMemoryExperiment(code, sched, fast);
    auto slow_result = runZMemoryExperiment(code, sched, slow);
    EXPECT_GT(slow_result.logicalErrorRate.rate,
              fast_result.logicalErrorRate.rate);
}

TEST(MemoryExperiment, DefaultsRoundsToDistance)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 10;
    cfg.physicalError = 1e-3;
    auto result = runZMemoryExperiment(code, sched, cfg);
    EXPECT_EQ(result.rounds, 3u);
}

TEST(MemoryExperiment, PerRoundRateBelowPerShot)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 500;
    cfg.physicalError = 0.03;
    cfg.rounds = 4;
    cfg.seed = 13;
    auto result = runZMemoryExperiment(code, sched, cfg);
    EXPECT_GT(result.logicalErrorRate.rate, 0.0);
    EXPECT_LT(result.perRoundErrorRate,
              result.logicalErrorRate.rate + 1e-12);
}

TEST(MemoryExperiment, DeterministicWithSeed)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 200;
    cfg.physicalError = 0.02;
    cfg.rounds = 2;
    cfg.seed = 4242;
    cfg.threads = 2;
    auto a = runZMemoryExperiment(code, sched, cfg);
    auto b = runZMemoryExperiment(code, sched, cfg);
    EXPECT_EQ(a.logicalErrorRate.successes,
              b.logicalErrorRate.successes);
}

TEST(MemoryExperiment, SingleVsMultiThreadSameDem)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 100;
    cfg.physicalError = 0.01;
    cfg.rounds = 2;
    cfg.threads = 1;
    auto single = runZMemoryExperiment(code, sched, cfg);
    cfg.threads = 2;
    auto multi = runZMemoryExperiment(code, sched, cfg);
    EXPECT_EQ(single.demMechanisms, multi.demMechanisms);
    EXPECT_EQ(single.demDetectors, multi.demDetectors);
}

TEST(MemoryExperiment, ChunkShotsMustBePositive)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 10;
    cfg.chunkShots = 0;
    EXPECT_THROW(runZMemoryExperiment(code, sched, cfg),
                 std::invalid_argument);
}

TEST(MemoryExperiment, CustomChunkShotsRunsFullBudget)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 250;
    cfg.chunkShots = 100; // 3 chunks, last one short
    cfg.physicalError = 0.02;
    cfg.rounds = 2;
    cfg.seed = 55;
    auto result = runZMemoryExperiment(code, sched, cfg);
    EXPECT_EQ(result.logicalErrorRate.trials, 250u);
    EXPECT_EQ(result.decoder.decodes, 250u);
}

TEST(MemoryExperiment, Bb72SubThresholdSanity)
{
    // At p = 5e-4 with no latency, [[72,12,6]] should have a low but
    // measurable failure rate envelope; at p = 5e-3 it must be much
    // worse.
    CssCode code = catalog::bb72();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig low;
    low.shots = 200;
    low.physicalError = 5e-4;
    low.seed = 5;
    MemoryExperimentConfig high = low;
    high.physicalError = 5e-3;
    auto low_r = runZMemoryExperiment(code, sched, low);
    auto high_r = runZMemoryExperiment(code, sched, high);
    EXPECT_GT(high_r.logicalErrorRate.rate,
              low_r.logicalErrorRate.rate);
    EXPECT_GT(high_r.logicalErrorRate.rate, 0.05);
    EXPECT_LT(low_r.logicalErrorRate.rate, 0.05);
}

} // namespace
} // namespace cyclone
