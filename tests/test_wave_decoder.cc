/**
 * @file
 * Tests for the lane-parallel BP wave kernel: bit-exactness against
 * the scalar decoder (convergence, iteration counts, posteriors and
 * hard decisions, per lane), ragged lane groups, early convergence,
 * max-iteration non-convergence, and the batched decode pipeline at
 * every supported lane width — including its interplay with the
 * zero-syndrome fast path and the duplicate-syndrome memo.
 */

#include <gtest/gtest.h>

#include "circuit/memory_circuit.h"
#include "common/rng.h"
#include "decoder/bp_wave_decoder.h"
#include "decoder/bposd_decoder.h"
#include "dem/dem_builder.h"
#include "dem/dem_sampler.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

/**
 * Skip kernel-driving tests on CPUs that cannot run the wave kernels
 * (x86-64 builds compile them with target("avx2")); the product path
 * falls back to the scalar core there, which test_shot_batch.cc
 * covers.
 */
#define SKIP_WITHOUT_WAVE_SUPPORT()                                    \
    do {                                                               \
        if (!BpWaveDecoder::runtimeSupported())                        \
            GTEST_SKIP() << "wave kernels unsupported on this CPU";    \
    } while (0)

/** Hand-built repetition-code DEM: chain of detectors. */
DetectorErrorModel
repetitionDem(size_t n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n - 1;
    dem.numObservables = 1;
    for (size_t i = 0; i < n; ++i) {
        DemMechanism m;
        m.probability = p;
        if (i > 0)
            m.detectors.push_back(static_cast<uint32_t>(i - 1));
        if (i < n - 1)
            m.detectors.push_back(static_cast<uint32_t>(i));
        m.observables = i == n - 1 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    return dem;
}

DetectorErrorModel
surface13Dem(double p, size_t rounds = 2)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = rounds;
    opts.noise = NoiseModel::uniform(p);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    return buildDetectorErrorModel(circuit);
}

/** What the scalar decoder did on one syndrome. */
struct ScalarRef
{
    bool converged = false;
    size_t iterations = 0;
    std::vector<float> posterior;
    BitVec hard;
};

ScalarRef
scalarReference(BpDecoder& bp, const BitVec& syndrome)
{
    ScalarRef ref;
    ref.converged = bp.decode(syndrome);
    ref.iterations = bp.lastIterations();
    ref.posterior = bp.posteriorLlr();
    ref.hard = bp.hardDecision();
    return ref;
}

/**
 * Decode `syndromes` in lane groups through a BpWaveDecoder and
 * require every lane to reproduce the scalar decoder bit-for-bit:
 * convergence flag, iteration count, every posterior float and every
 * hard-decision bit.
 */
void
expectWaveMatchesScalar(const DetectorErrorModel& dem, BpOptions options,
                        const std::vector<BitVec>& syndromes,
                        const char* label)
{
    auto graph = std::make_shared<const BpGraph>(dem);
    BpDecoder scalar(graph, options);
    BpWaveDecoder wave(graph, options);
    const size_t L = wave.laneWidth();

    std::vector<float> lane_posterior;
    BitVec lane_hard;
    const BitVec* lanes[64];
    for (size_t group = 0; group < syndromes.size(); group += L) {
        const size_t count = std::min(L, syndromes.size() - group);
        for (size_t i = 0; i < count; ++i)
            lanes[i] = &syndromes[group + i];
        wave.decodeWave(lanes, count);
        for (size_t i = 0; i < count; ++i) {
            const ScalarRef ref =
                scalarReference(scalar, syndromes[group + i]);
            ASSERT_EQ(wave.laneConverged(i), ref.converged)
                << label << " group=" << group << " lane=" << i;
            ASSERT_EQ(wave.laneIterations(i), ref.iterations)
                << label << " group=" << group << " lane=" << i;
            wave.lanePosterior(i, lane_posterior);
            ASSERT_EQ(lane_posterior.size(), ref.posterior.size());
            for (size_t v = 0; v < lane_posterior.size(); ++v) {
                // Exact float equality: lanes must not perturb the
                // arithmetic in any way.
                ASSERT_EQ(lane_posterior[v], ref.posterior[v])
                    << label << " group=" << group << " lane=" << i
                    << " var=" << v;
            }
            wave.laneHardDecision(i, lane_hard);
            ASSERT_EQ(lane_hard, ref.hard)
                << label << " group=" << group << " lane=" << i;
        }
    }
}

std::vector<BitVec>
sampledSyndromes(const DetectorErrorModel& dem, size_t shots,
                 uint64_t seed)
{
    Rng rng(seed);
    DemShots sampled;
    sampleDemInto(dem, shots, rng, sampled);
    return std::move(sampled.syndromes);
}

TEST(WaveDecoder, ResolvesLaneWidths)
{
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(0),
              BpWaveDecoder::kDefaultLanes);
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(2), 4u);
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(4), 4u);
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(7), 4u);
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(8), 8u);
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(15), 8u);
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(16), 16u);
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(64), 16u);
}

TEST(WaveDecoder, BitExactAgainstScalarAcrossLaneWidthsAndVariants)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    const auto dem = surface13Dem(0.01);
    const auto syndromes = sampledSyndromes(dem, 70, 0xabc);
    for (const auto variant : {BpOptions::Variant::MinSum,
                               BpOptions::Variant::ProductSum}) {
        for (size_t lanes : {4u, 8u, 16u}) {
            BpOptions options;
            options.variant = variant;
            options.waveLanes = lanes;
            expectWaveMatchesScalar(
                dem, options, syndromes,
                variant == BpOptions::Variant::MinSum ? "min-sum"
                                                      : "product-sum");
        }
    }
}

TEST(WaveDecoder, RaggedGroupsMatchScalarAtEveryCount)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Every partial lane count from 1 to L-1 must behave exactly like
    // a full group: idle lanes are frozen from the start and never
    // perturb real ones.
    const auto dem = surface13Dem(0.012);
    const auto syndromes = sampledSyndromes(dem, 15, 0x7a9);
    ASSERT_EQ(syndromes.size(), 15u);
    BpOptions options;
    options.waveLanes = 16;
    expectWaveMatchesScalar(dem, options, syndromes, "ragged-15");

    // And a count of 1: the degenerate single-lane wave.
    std::vector<BitVec> one(syndromes.begin(), syndromes.begin() + 1);
    expectWaveMatchesScalar(dem, options, one, "ragged-1");
}

TEST(WaveDecoder, AllLanesConvergeEarlyFreezeIsExact)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Single-fault syndromes on a repetition chain: BP converges on
    // every lane within a few iterations, at lane-dependent times, so
    // the per-lane freeze logic is exercised while the whole group
    // still finishes well before maxIterations.
    const auto dem = repetitionDem(24, 0.02);
    std::vector<BitVec> syndromes;
    for (size_t v = 0; v < dem.mechanisms.size(); ++v) {
        BitVec syndrome(dem.numDetectors);
        for (uint32_t d : dem.mechanisms[v].detectors)
            syndrome.set(d, true);
        syndromes.push_back(std::move(syndrome));
    }
    BpOptions options;
    options.waveLanes = 8;
    expectWaveMatchesScalar(dem, options, syndromes, "single-faults");

    auto graph = std::make_shared<const BpGraph>(dem);
    BpWaveDecoder wave(graph, options);
    const BitVec* lanes[8];
    for (size_t i = 0; i < 8; ++i)
        lanes[i] = &syndromes[i + 1];
    wave.decodeWave(lanes, 8);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(wave.laneConverged(i)) << "lane " << i;
        EXPECT_LT(wave.laneIterations(i), options.maxIterations)
            << "lane " << i;
    }
}

TEST(WaveDecoder, MaxIterationNonConvergenceMatchesScalar)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // A starved iteration budget forces the non-convergence epilogue
    // (final posterior pass + last-chance verification) on most lanes.
    const auto dem = surface13Dem(0.02);
    const auto syndromes = sampledSyndromes(dem, 40, 0x90d);
    for (size_t max_iters : {0u, 1u, 3u}) {
        BpOptions options;
        options.maxIterations = max_iters;
        options.waveLanes = 8;
        expectWaveMatchesScalar(dem, options, syndromes, "starved");
    }
}

/** Decode every scalar-sampled shot with a fresh decoder. */
std::vector<uint64_t>
scalarPredictions(const DetectorErrorModel& dem, const DemShots& shots,
                  const BpOptions& bp, BpOsdStats* stats_out = nullptr)
{
    BpOsdDecoder decoder(dem, bp);
    std::vector<uint64_t> out;
    out.reserve(shots.syndromes.size());
    for (const BitVec& syndrome : shots.syndromes)
        out.push_back(decoder.decode(syndrome));
    if (stats_out != nullptr)
        *stats_out = decoder.stats();
    return out;
}

TEST(WaveDecoder, DecodeBatchBitIdenticalAcrossLaneWidths)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // The full batched pipeline (fast path + memo + wave kernel +
    // OSD fallback) must produce identical predictions AND identical
    // aggregate statistics at every lane width, including the
    // wave-disabled width 1.
    const auto dem = surface13Dem(0.008);
    const size_t shots = 180;
    Rng scalar_rng(41);
    DemShots scalar_shots;
    sampleDemInto(dem, shots, scalar_rng, scalar_shots);
    Rng batch_rng(41);
    ShotBatch batch;
    sampleDemBatch(dem, shots, batch_rng, batch);

    for (const auto variant : {BpOptions::Variant::MinSum,
                               BpOptions::Variant::ProductSum}) {
        BpOptions bp;
        bp.variant = variant;
        BpOsdStats scalar_stats;
        const std::vector<uint64_t> expected =
            scalarPredictions(dem, scalar_shots, bp, &scalar_stats);
        EXPECT_EQ(scalar_stats.waveGroups, 0u);
        EXPECT_DOUBLE_EQ(scalar_stats.waveLaneOccupancy(), 0.0);

        for (size_t lanes : {1u, 4u, 8u, 16u}) {
            bp.waveLanes = lanes;
            BpOsdDecoder decoder(dem, bp);
            EXPECT_EQ(decoder.waveLaneWidth(), lanes == 1 ? 1u : lanes);
            std::vector<uint64_t> got;
            decoder.decodeBatch(batch, got);
            ASSERT_EQ(got.size(), shots);
            for (size_t s = 0; s < shots; ++s)
                ASSERT_EQ(got[s], expected[s])
                    << "lanes=" << lanes << " s=" << s;

            const BpOsdStats& st = decoder.stats();
            EXPECT_EQ(st.decodes, scalar_stats.decodes);
            EXPECT_EQ(st.bpConverged, scalar_stats.bpConverged);
            EXPECT_EQ(st.osdInvocations, scalar_stats.osdInvocations);
            EXPECT_EQ(st.osdFailures, scalar_stats.osdFailures);
            EXPECT_EQ(st.trivialShots, scalar_stats.trivialShots);
            EXPECT_EQ(st.bpIterations, scalar_stats.bpIterations);

            // Lane accounting: every distinct non-trivial syndrome
            // occupies exactly one filled lane slot.
            const size_t distinct =
                st.decodes - st.trivialShots - st.memoHits;
            if (lanes == 1) {
                EXPECT_EQ(st.waveGroups, 0u);
                EXPECT_EQ(st.waveLanesFilled, 0u);
            } else {
                EXPECT_EQ(st.waveLanesFilled, distinct);
                EXPECT_EQ(st.waveLaneSlots, st.waveGroups * lanes);
                EXPECT_GE(st.waveLaneSlots, st.waveLanesFilled);
                EXPECT_GT(st.waveLaneOccupancy(), 0.0);
                EXPECT_LE(st.waveLaneOccupancy(), 1.0);
            }
        }
    }
}

TEST(WaveDecoder, DescendingDetectorListsUseExactGatherFallback)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Mechanisms listing their detectors in descending order defeat
    // the scatter form of the wave posterior pass (the streaming
    // order would no longer match the scalar gather order); the graph
    // must flag it and the wave decoder must stay bit-exact through
    // the gather fallback.
    DetectorErrorModel dem;
    dem.numDetectors = 6;
    dem.numObservables = 1;
    for (size_t i = 0; i + 1 < dem.numDetectors; ++i) {
        DemMechanism m;
        m.probability = 0.04;
        m.detectors.push_back(static_cast<uint32_t>(i + 1));
        m.detectors.push_back(static_cast<uint32_t>(i)); // descending
        m.observables = i == 0 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    auto graph = std::make_shared<const BpGraph>(dem);
    EXPECT_FALSE(graph->varEdgesAscendByCheck);
    EXPECT_TRUE(
        std::make_shared<const BpGraph>(repetitionDem(5, 0.1))
            ->varEdgesAscendByCheck);

    const auto syndromes = sampledSyndromes(dem, 40, 0x51);
    BpOptions options;
    options.waveLanes = 8;
    expectWaveMatchesScalar(dem, options, syndromes, "descending");
}

TEST(WaveDecoder, MemoInterplayReplaysWaveOutcomes)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Tiny DEM at high p: a 512-shot batch holds only a handful of
    // distinct syndromes, so the wave kernel sees each exactly once
    // and the memo replays its outcome onto every duplicate.
    const auto dem = repetitionDem(5, 0.2);
    const size_t shots = 512;
    Rng scalar_rng(3);
    DemShots scalar_shots;
    sampleDemInto(dem, shots, scalar_rng, scalar_shots);
    Rng batch_rng(3);
    ShotBatch batch;
    sampleDemBatch(dem, shots, batch_rng, batch);

    BpOsdStats scalar_stats;
    const std::vector<uint64_t> expected = scalarPredictions(
        dem, scalar_shots, BpOptions{}, &scalar_stats);

    BpOptions bp;
    bp.waveLanes = 4;
    BpOsdDecoder decoder(dem, bp);
    std::vector<uint64_t> got;
    decoder.decodeBatch(batch, got);
    for (size_t s = 0; s < shots; ++s)
        ASSERT_EQ(got[s], expected[s]) << "s=" << s;

    const BpOsdStats& st = decoder.stats();
    EXPECT_EQ(st.decodes, shots);
    EXPECT_EQ(st.bpConverged, scalar_stats.bpConverged);
    EXPECT_EQ(st.bpIterations, scalar_stats.bpIterations);
    EXPECT_GT(st.memoHits, shots / 2);
    EXPECT_EQ(st.waveLanesFilled,
              st.decodes - st.trivialShots - st.memoHits);
    // Replaying the same batch with a fresh decoder re-seeds the memo
    // and decodes the same distinct syndromes again.
    BpOsdDecoder fresh(dem, bp);
    std::vector<uint64_t> again;
    fresh.decodeBatch(batch, again);
    EXPECT_EQ(fresh.stats().memoHits, st.memoHits);
    EXPECT_EQ(fresh.stats().waveLanesFilled, st.waveLanesFilled);
}

} // namespace
} // namespace cyclone
