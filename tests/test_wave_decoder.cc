/**
 * @file
 * Tests for the lane-parallel BP wave kernel: bit-exactness against
 * the scalar decoder (convergence, iteration counts, posteriors and
 * hard decisions, per lane), ragged lane groups, early convergence,
 * max-iteration non-convergence, and the batched decode pipeline at
 * every supported lane width — including its interplay with the
 * zero-syndrome fast path and the duplicate-syndrome memo.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "campaign/adaptive_sampler.h"
#include "circuit/memory_circuit.h"
#include "common/rng.h"
#include "decoder/bp_wave_decoder.h"
#include "decoder/bposd_decoder.h"
#include "decoder/decoder_backend.h"
#include "dem/dem_builder.h"
#include "dem/dem_sampler.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

/**
 * Skip kernel-driving tests on CPUs that cannot run the wave kernels
 * (x86-64 builds compile them with target("avx2")); the product path
 * falls back to the scalar core there, which test_shot_batch.cc
 * covers.
 */
#define SKIP_WITHOUT_WAVE_SUPPORT()                                    \
    do {                                                               \
        if (!BpWaveDecoder::runtimeSupported())                        \
            GTEST_SKIP() << "wave kernels unsupported on this CPU";    \
    } while (0)

/** Hand-built repetition-code DEM: chain of detectors. */
DetectorErrorModel
repetitionDem(size_t n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n - 1;
    dem.numObservables = 1;
    for (size_t i = 0; i < n; ++i) {
        DemMechanism m;
        m.probability = p;
        if (i > 0)
            m.detectors.push_back(static_cast<uint32_t>(i - 1));
        if (i < n - 1)
            m.detectors.push_back(static_cast<uint32_t>(i));
        m.observables = i == n - 1 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    return dem;
}

DetectorErrorModel
surface13Dem(double p, size_t rounds = 2)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = rounds;
    opts.noise = NoiseModel::uniform(p);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    return buildDetectorErrorModel(circuit);
}

/** What the scalar decoder did on one syndrome. */
struct ScalarRef
{
    bool converged = false;
    size_t iterations = 0;
    std::vector<float> posterior;
    BitVec hard;
};

ScalarRef
scalarReference(BpDecoder& bp, const BitVec& syndrome)
{
    ScalarRef ref;
    ref.converged = bp.decode(syndrome);
    ref.iterations = bp.lastIterations();
    ref.posterior = bp.posteriorLlr();
    ref.hard = bp.hardDecision();
    return ref;
}

/**
 * Decode `syndromes` in lane groups through a BpWaveDecoder and
 * require every lane to reproduce the scalar decoder bit-for-bit:
 * convergence flag, iteration count, every posterior float and every
 * hard-decision bit.
 */
void
expectWaveMatchesScalar(const DetectorErrorModel& dem, BpOptions options,
                        const std::vector<BitVec>& syndromes,
                        const char* label,
                        const DecoderBackend* backend = nullptr)
{
    auto graph = std::make_shared<const BpGraph>(dem);
    BpDecoder scalar(graph, options);
    auto wavePtr = backend != nullptr
        ? std::make_unique<BpWaveDecoder>(graph, options, *backend)
        : std::make_unique<BpWaveDecoder>(graph, options);
    BpWaveDecoder& wave = *wavePtr;
    const size_t L = wave.laneWidth();

    std::vector<float> lane_posterior;
    BitVec lane_hard;
    const BitVec* lanes[64];
    for (size_t group = 0; group < syndromes.size(); group += L) {
        const size_t count = std::min(L, syndromes.size() - group);
        for (size_t i = 0; i < count; ++i)
            lanes[i] = &syndromes[group + i];
        wave.decodeWave(lanes, count);
        for (size_t i = 0; i < count; ++i) {
            const ScalarRef ref =
                scalarReference(scalar, syndromes[group + i]);
            ASSERT_EQ(wave.laneConverged(i), ref.converged)
                << label << " group=" << group << " lane=" << i;
            ASSERT_EQ(wave.laneIterations(i), ref.iterations)
                << label << " group=" << group << " lane=" << i;
            wave.lanePosterior(i, lane_posterior);
            ASSERT_EQ(lane_posterior.size(), ref.posterior.size());
            for (size_t v = 0; v < lane_posterior.size(); ++v) {
                // Exact float equality: lanes must not perturb the
                // arithmetic in any way.
                ASSERT_EQ(lane_posterior[v], ref.posterior[v])
                    << label << " group=" << group << " lane=" << i
                    << " var=" << v;
            }
            wave.laneHardDecision(i, lane_hard);
            ASSERT_EQ(lane_hard, ref.hard)
                << label << " group=" << group << " lane=" << i;
        }
    }
}

std::vector<BitVec>
sampledSyndromes(const DetectorErrorModel& dem, size_t shots,
                 uint64_t seed)
{
    Rng rng(seed);
    DemShots sampled;
    sampleDemInto(dem, shots, rng, sampled);
    return std::move(sampled.syndromes);
}

/** Set (or, with nullptr, unset) an env var for one test's scope. */
class EnvGuard
{
  public:
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        const char* prev = std::getenv(name);
        had_ = prev != nullptr;
        if (had_)
            old_ = prev;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

TEST(WaveDecoder, ResolvesLaneWidthsPerBackend)
{
    EnvGuard noOverride(kWaveBackendEnv, nullptr);

    // A request of 1 always means "wave disabled", on every host.
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(1), 1u);
    EXPECT_STREQ(selectDecoderBackend(1).backend->name, "scalar");

    // The registry ends with the always-available scalar backend, and
    // every wider rung precedes it.
    const auto& registry = decoderBackendRegistry();
    ASSERT_FALSE(registry.empty());
    EXPECT_STREQ(registry.back()->name, "scalar");
    EXPECT_EQ(registry.back()->kernels, nullptr);
    EXPECT_TRUE(registry.back()->supported());

    // resolveLaneWidth returns the widest rung at or below the
    // request that some supported backend serves; requests below the
    // narrowest kernel clamp up to it.
    for (size_t req : {size_t{0}, size_t{2}, size_t{4}, size_t{7},
                       size_t{8}, size_t{15}, size_t{16}, size_t{64}}) {
        const DecoderBackendChoice choice = selectDecoderBackend(req);
        EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(req), choice.lanes);
        if (choice.lanes > 1) {
            EXPECT_EQ(choice.lanes,
                      backendLaneWidth(*choice.backend, req));
            if (req >= 4)
                EXPECT_LE(choice.lanes, req);
        }
    }
    EXPECT_LE(BpWaveDecoder::resolveLaneWidth(4),
              BpWaveDecoder::resolveLaneWidth(8));
    EXPECT_LE(BpWaveDecoder::resolveLaneWidth(8),
              BpWaveDecoder::resolveLaneWidth(16));
    // An explicit oversize request rounds down to the widest width
    // any rung serves; auto (0) takes the dispatched rung's preferred
    // width, which may be narrower (the generic rung prefers 8 but
    // serves 16).
    EXPECT_GE(BpWaveDecoder::resolveLaneWidth(64),
              BpWaveDecoder::resolveLaneWidth(0));

    const DecoderBackend* avx512 = findDecoderBackend("avx512");
    const DecoderBackend* avx2 = findDecoderBackend("avx2");
    const DecoderBackend* generic = findDecoderBackend("generic");
    if (generic != nullptr) {
        // Non-x86 build: the generic rung serves every width.
        EXPECT_EQ(backendLaneWidth(*generic, 0), 8u);
        EXPECT_EQ(backendLaneWidth(*generic, 16), 16u);
        EXPECT_EQ(backendLaneWidth(*generic, 4), 4u);
    }
    if (avx2 != nullptr && avx2->supported()) {
        // The AVX2 rung serves L=4 and L=8 but never L=16.
        EXPECT_EQ(backendLaneWidth(*avx2, 4), 4u);
        EXPECT_EQ(backendLaneWidth(*avx2, 0), 8u);
        EXPECT_EQ(backendLaneWidth(*avx2, 16), 8u);
        EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(8), 8u);
        EXPECT_STREQ(selectDecoderBackend(8).backend->name, "avx2");
    }
    if (avx512 != nullptr && avx512->supported()) {
        // The AVX-512 rung serves exactly L=16 (one zmm per variable);
        // narrower requests fall through to the AVX2 rung instead of
        // running 16 generic-vector lanes.
        EXPECT_EQ(backendLaneWidth(*avx512, 16), 16u);
        EXPECT_EQ(backendLaneWidth(*avx512, 8), 0u);
        EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(0), 16u);
        EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(16), 16u);
        EXPECT_STREQ(selectDecoderBackend(16).backend->name, "avx512");
    } else if (avx2 != nullptr && avx2->supported()) {
        // An AVX2-only host resolves a 16-lane request to 8.
        EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(16), 8u);
    } else if (avx2 != nullptr) {
        // Pre-AVX2 x86 host: only the scalar rung runs.
        EXPECT_FALSE(BpWaveDecoder::runtimeSupported());
        EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(0), 1u);
        EXPECT_STREQ(selectDecoderBackend(0).backend->name, "scalar");
    }
}

TEST(WaveDecoder, EnvOverrideForcesDispatch)
{
    // Every supported backend can be forced by name through
    // CYCLONE_WAVE_BACKEND, and bogus or impossible overrides fall
    // back to auto dispatch instead of stranding the decode.
    EnvGuard autoGuard(kWaveBackendEnv, nullptr);
    const DecoderBackendChoice autoChoice = selectDecoderBackend(0);

    for (const DecoderBackend* b : decoderBackendRegistry()) {
        if (!b->supported())
            continue;
        EnvGuard guard(kWaveBackendEnv, b->name);
        const DecoderBackendChoice forced = selectDecoderBackend(0);
        EXPECT_STREQ(forced.backend->name, b->name) << b->name;
        if (b->kernels == nullptr)
            EXPECT_EQ(forced.lanes, 1u);
        else
            EXPECT_EQ(forced.lanes, backendLaneWidth(*b, 0));
    }
    {
        EnvGuard guard(kWaveBackendEnv, "no-such-backend");
        const DecoderBackendChoice choice = selectDecoderBackend(0);
        EXPECT_STREQ(choice.backend->name, autoChoice.backend->name);
        EXPECT_EQ(choice.lanes, autoChoice.lanes);
    }
    {
        EnvGuard guard(kWaveBackendEnv, "auto");
        const DecoderBackendChoice choice = selectDecoderBackend(0);
        EXPECT_STREQ(choice.backend->name, autoChoice.backend->name);
        EXPECT_EQ(choice.lanes, autoChoice.lanes);
    }
    const DecoderBackend* avx512 = findDecoderBackend("avx512");
    const DecoderBackend* avx2 = findDecoderBackend("avx2");
    if (avx512 != nullptr && avx512->supported() && avx2 != nullptr) {
        // Forcing avx512 with a width it cannot serve falls back to
        // auto dispatch (which lands on the avx2 rung for L=8).
        EnvGuard guard(kWaveBackendEnv, "avx512");
        const DecoderBackendChoice choice = selectDecoderBackend(8);
        EXPECT_STREQ(choice.backend->name, "avx2");
        EXPECT_EQ(choice.lanes, 8u);
    }
}

TEST(WaveDecoder, ForcedScalarDisablesWavePath)
{
    EnvGuard guard(kWaveBackendEnv, "scalar");
    EXPECT_FALSE(BpWaveDecoder::runtimeSupported());
    EXPECT_EQ(BpWaveDecoder::resolveLaneWidth(0), 1u);

    // A decoder constructed under the override uses the scalar batch
    // core — identical predictions, no wave groups.
    const auto dem = surface13Dem(0.01);
    Rng rng(11);
    ShotBatch batch;
    sampleDemBatch(dem, 96, rng, batch);
    BpOsdDecoder decoder(dem, BpOptions{});
    EXPECT_EQ(decoder.waveLaneWidth(), 1u);
    EXPECT_STREQ(decoder.backendName(), "scalar");
    std::vector<uint64_t> got;
    decoder.decodeBatch(batch, got);
    EXPECT_EQ(decoder.stats().waveGroups, 0u);
    EXPECT_EQ(decoder.stats().backend, "scalar");
}

TEST(WaveDecoder, BackendMatrixBitExactAgainstScalar)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Every supported kernel backend, at every lane width it serves,
    // must reproduce the scalar decoder bit-for-bit under both BP
    // variants. On an AVX-512 host this covers avx2 L=4/8 and avx512
    // L=16 in one run; narrower hosts cover what they can.
    const auto dem = surface13Dem(0.01);
    const auto syndromes = sampledSyndromes(dem, 48, 0xbead);
    for (const DecoderBackend* b : decoderBackendRegistry()) {
        if (b->kernels == nullptr || !b->supported())
            continue;
        for (size_t lanes : {size_t{4}, size_t{8}, size_t{16}}) {
            if (b->kernels(lanes) == nullptr)
                continue;
            for (const auto variant : {BpOptions::Variant::MinSum,
                                       BpOptions::Variant::ProductSum}) {
                BpOptions options;
                options.variant = variant;
                options.waveLanes = lanes;
                const std::string label = std::string(b->name) + "-L" +
                    std::to_string(lanes);
                expectWaveMatchesScalar(dem, options, syndromes,
                                        label.c_str(), b);
            }
        }
    }
}

TEST(WaveDecoder, BitExactAgainstScalarAcrossLaneWidthsAndVariants)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    const auto dem = surface13Dem(0.01);
    const auto syndromes = sampledSyndromes(dem, 70, 0xabc);
    for (const auto variant : {BpOptions::Variant::MinSum,
                               BpOptions::Variant::ProductSum}) {
        for (size_t lanes : {4u, 8u, 16u}) {
            BpOptions options;
            options.variant = variant;
            options.waveLanes = lanes;
            expectWaveMatchesScalar(
                dem, options, syndromes,
                variant == BpOptions::Variant::MinSum ? "min-sum"
                                                      : "product-sum");
        }
    }
}

TEST(WaveDecoder, RaggedGroupsMatchScalarAtEveryCount)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Every partial lane count from 1 to L-1 must behave exactly like
    // a full group: idle lanes are frozen from the start and never
    // perturb real ones.
    const auto dem = surface13Dem(0.012);
    const auto syndromes = sampledSyndromes(dem, 15, 0x7a9);
    ASSERT_EQ(syndromes.size(), 15u);
    BpOptions options;
    options.waveLanes = 16;
    expectWaveMatchesScalar(dem, options, syndromes, "ragged-15");

    // And a count of 1: the degenerate single-lane wave.
    std::vector<BitVec> one(syndromes.begin(), syndromes.begin() + 1);
    expectWaveMatchesScalar(dem, options, one, "ragged-1");
}

TEST(WaveDecoder, AllLanesConvergeEarlyFreezeIsExact)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Single-fault syndromes on a repetition chain: BP converges on
    // every lane within a few iterations, at lane-dependent times, so
    // the per-lane freeze logic is exercised while the whole group
    // still finishes well before maxIterations.
    const auto dem = repetitionDem(24, 0.02);
    std::vector<BitVec> syndromes;
    for (size_t v = 0; v < dem.mechanisms.size(); ++v) {
        BitVec syndrome(dem.numDetectors);
        for (uint32_t d : dem.mechanisms[v].detectors)
            syndrome.set(d, true);
        syndromes.push_back(std::move(syndrome));
    }
    BpOptions options;
    options.waveLanes = 8;
    expectWaveMatchesScalar(dem, options, syndromes, "single-faults");

    auto graph = std::make_shared<const BpGraph>(dem);
    BpWaveDecoder wave(graph, options);
    const BitVec* lanes[8];
    for (size_t i = 0; i < 8; ++i)
        lanes[i] = &syndromes[i + 1];
    wave.decodeWave(lanes, 8);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(wave.laneConverged(i)) << "lane " << i;
        EXPECT_LT(wave.laneIterations(i), options.maxIterations)
            << "lane " << i;
    }
}

TEST(WaveDecoder, MaxIterationNonConvergenceMatchesScalar)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // A starved iteration budget forces the non-convergence epilogue
    // (final posterior pass + last-chance verification) on most lanes.
    const auto dem = surface13Dem(0.02);
    const auto syndromes = sampledSyndromes(dem, 40, 0x90d);
    for (size_t max_iters : {0u, 1u, 3u}) {
        BpOptions options;
        options.maxIterations = max_iters;
        options.waveLanes = 8;
        expectWaveMatchesScalar(dem, options, syndromes, "starved");
    }
}

/** Decode every scalar-sampled shot with a fresh decoder. */
std::vector<uint64_t>
scalarPredictions(const DetectorErrorModel& dem, const DemShots& shots,
                  const BpOptions& bp, BpOsdStats* stats_out = nullptr)
{
    BpOsdDecoder decoder(dem, bp);
    std::vector<uint64_t> out;
    out.reserve(shots.syndromes.size());
    for (const BitVec& syndrome : shots.syndromes)
        out.push_back(decoder.decode(syndrome));
    if (stats_out != nullptr)
        *stats_out = decoder.stats();
    return out;
}

TEST(WaveDecoder, DecodeBatchBitIdenticalAcrossLaneWidths)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // The full batched pipeline (fast path + memo + wave kernel +
    // OSD fallback) must produce identical predictions AND identical
    // aggregate statistics at every lane width, including the
    // wave-disabled width 1.
    const auto dem = surface13Dem(0.008);
    const size_t shots = 180;
    Rng scalar_rng(41);
    DemShots scalar_shots;
    sampleDemInto(dem, shots, scalar_rng, scalar_shots);
    Rng batch_rng(41);
    ShotBatch batch;
    sampleDemBatch(dem, shots, batch_rng, batch);

    for (const auto variant : {BpOptions::Variant::MinSum,
                               BpOptions::Variant::ProductSum}) {
        BpOptions bp;
        bp.variant = variant;
        BpOsdStats scalar_stats;
        const std::vector<uint64_t> expected =
            scalarPredictions(dem, scalar_shots, bp, &scalar_stats);
        EXPECT_EQ(scalar_stats.waveGroups, 0u);
        EXPECT_DOUBLE_EQ(scalar_stats.waveLaneOccupancy(), 0.0);

        for (size_t lanes : {1u, 4u, 8u, 16u}) {
            bp.waveLanes = lanes;
            BpOsdDecoder decoder(dem, bp);
            // Dispatch resolves the request per host (an AVX2-only
            // host resolves 16 to 8; this must track it exactly).
            EXPECT_EQ(decoder.waveLaneWidth(),
                      BpWaveDecoder::resolveLaneWidth(lanes));
            EXPECT_STREQ(decoder.backendName(),
                         selectDecoderBackend(lanes).backend->name);
            std::vector<uint64_t> got;
            decoder.decodeBatch(batch, got);
            ASSERT_EQ(got.size(), shots);
            for (size_t s = 0; s < shots; ++s)
                ASSERT_EQ(got[s], expected[s])
                    << "lanes=" << lanes << " s=" << s;

            const BpOsdStats& st = decoder.stats();
            EXPECT_EQ(st.decodes, scalar_stats.decodes);
            EXPECT_EQ(st.bpConverged, scalar_stats.bpConverged);
            EXPECT_EQ(st.osdInvocations, scalar_stats.osdInvocations);
            EXPECT_EQ(st.osdFailures, scalar_stats.osdFailures);
            EXPECT_EQ(st.trivialShots, scalar_stats.trivialShots);
            EXPECT_EQ(st.bpIterations, scalar_stats.bpIterations);

            // Lane accounting: every distinct non-trivial syndrome
            // occupies exactly one filled lane slot.
            const size_t distinct =
                st.decodes - st.trivialShots - st.memoHits;
            if (lanes == 1) {
                EXPECT_EQ(st.waveGroups, 0u);
                EXPECT_EQ(st.waveLanesFilled, 0u);
            } else {
                EXPECT_EQ(st.waveLanesFilled, distinct);
                EXPECT_EQ(st.waveLaneSlots, st.waveGroups * lanes);
                EXPECT_GE(st.waveLaneSlots, st.waveLanesFilled);
                EXPECT_GT(st.waveLaneOccupancy(), 0.0);
                EXPECT_LE(st.waveLaneOccupancy(), 1.0);
            }
        }
    }
}

TEST(WaveDecoder, DescendingDetectorListsUseExactGatherFallback)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Mechanisms listing their detectors in descending order defeat
    // the scatter form of the wave posterior pass (the streaming
    // order would no longer match the scalar gather order); the graph
    // must flag it and the wave decoder must stay bit-exact through
    // the gather fallback.
    DetectorErrorModel dem;
    dem.numDetectors = 6;
    dem.numObservables = 1;
    for (size_t i = 0; i + 1 < dem.numDetectors; ++i) {
        DemMechanism m;
        m.probability = 0.04;
        m.detectors.push_back(static_cast<uint32_t>(i + 1));
        m.detectors.push_back(static_cast<uint32_t>(i)); // descending
        m.observables = i == 0 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    auto graph = std::make_shared<const BpGraph>(dem);
    EXPECT_FALSE(graph->varEdgesAscendByCheck);
    EXPECT_TRUE(
        std::make_shared<const BpGraph>(repetitionDem(5, 0.1))
            ->varEdgesAscendByCheck);

    const auto syndromes = sampledSyndromes(dem, 40, 0x51);
    BpOptions options;
    options.waveLanes = 8;
    expectWaveMatchesScalar(dem, options, syndromes, "descending");
}

TEST(WaveDecoder, MemoInterplayReplaysWaveOutcomes)
{
    SKIP_WITHOUT_WAVE_SUPPORT();
    // Tiny DEM at high p: a 512-shot batch holds only a handful of
    // distinct syndromes, so the wave kernel sees each exactly once
    // and the memo replays its outcome onto every duplicate.
    const auto dem = repetitionDem(5, 0.2);
    const size_t shots = 512;
    Rng scalar_rng(3);
    DemShots scalar_shots;
    sampleDemInto(dem, shots, scalar_rng, scalar_shots);
    Rng batch_rng(3);
    ShotBatch batch;
    sampleDemBatch(dem, shots, batch_rng, batch);

    BpOsdStats scalar_stats;
    const std::vector<uint64_t> expected = scalarPredictions(
        dem, scalar_shots, BpOptions{}, &scalar_stats);

    BpOptions bp;
    bp.waveLanes = 4;
    BpOsdDecoder decoder(dem, bp);
    std::vector<uint64_t> got;
    decoder.decodeBatch(batch, got);
    for (size_t s = 0; s < shots; ++s)
        ASSERT_EQ(got[s], expected[s]) << "s=" << s;

    const BpOsdStats& st = decoder.stats();
    EXPECT_EQ(st.decodes, shots);
    EXPECT_EQ(st.bpConverged, scalar_stats.bpConverged);
    EXPECT_EQ(st.bpIterations, scalar_stats.bpIterations);
    EXPECT_GT(st.memoHits, shots / 2);
    EXPECT_EQ(st.waveLanesFilled,
              st.decodes - st.trivialShots - st.memoHits);
    // Replaying the same batch with a fresh decoder re-seeds the memo
    // and decodes the same distinct syndromes again.
    BpOsdDecoder fresh(dem, bp);
    std::vector<uint64_t> again;
    fresh.decodeBatch(batch, again);
    EXPECT_EQ(fresh.stats().memoHits, st.memoHits);
    EXPECT_EQ(fresh.stats().waveLanesFilled, st.waveLanesFilled);
}

TEST(WaveDecoder, StagedPoolBitIdenticalToPerBatchDecoding)
{
    // Cross-chunk syndrome staging regroups lanes but must change no
    // prediction and no per-shot statistic: the decode of a distinct
    // syndrome is a pure function of that syndrome. Only grouping
    // counters (memoHits, waveGroups, occupancy, stagedChunks) may
    // move. Runs on every host — the scalar fallback stages too.
    const auto dem = surface13Dem(0.012);
    const size_t kChunks = 5;
    const size_t kShots = 48; // Small: ragged per-chunk tail groups.

    std::vector<ShotBatch> batches(kChunks);
    for (size_t k = 0; k < kChunks; ++k) {
        Rng rng(0x1000 + k);
        sampleDemBatch(dem, kShots, rng, batches[k]);
    }

    BpOptions bp;
    bp.waveLanes = 16;

    // Reference: each chunk through its own decodeBatch on a fresh
    // decoder (memo scoped per chunk, like stagingChunks = 1).
    std::vector<std::vector<uint64_t>> perChunk(kChunks);
    BpOsdStats sum;
    for (size_t k = 0; k < kChunks; ++k) {
        BpOsdDecoder decoder(dem, bp);
        decoder.decodeBatch(batches[k], perChunk[k]);
        const BpOsdStats& s = decoder.stats();
        sum.decodes += s.decodes;
        sum.bpConverged += s.bpConverged;
        sum.osdInvocations += s.osdInvocations;
        sum.osdFailures += s.osdFailures;
        sum.trivialShots += s.trivialShots;
        sum.memoHits += s.memoHits;
        sum.bpIterations += s.bpIterations;
        sum.waveGroups += s.waveGroups;
        sum.waveLaneSlots += s.waveLaneSlots;
        sum.waveLanesFilled += s.waveLanesFilled;
        EXPECT_EQ(s.stagedChunks, 0u); // Plain decodeBatch never stages.
    }

    // Staged: all chunks pooled into one group.
    BpOsdDecoder staged(dem, bp);
    staged.beginStaged();
    for (size_t k = 0; k < kChunks; ++k)
        staged.stageBatch(batches[k]);
    staged.flushStaged();

    for (size_t k = 0; k < kChunks; ++k) {
        const size_t base = staged.stagedBatchOffset(k);
        for (size_t s = 0; s < kShots; ++s)
            ASSERT_EQ(staged.stagedPredictions()[base + s],
                      perChunk[k][s])
                << "chunk=" << k << " s=" << s;
    }

    const BpOsdStats& st = staged.stats();
    // Per-shot statistics are exactly the per-chunk sums...
    EXPECT_EQ(st.decodes, sum.decodes);
    EXPECT_EQ(st.bpConverged, sum.bpConverged);
    EXPECT_EQ(st.osdInvocations, sum.osdInvocations);
    EXPECT_EQ(st.osdFailures, sum.osdFailures);
    EXPECT_EQ(st.trivialShots, sum.trivialShots);
    EXPECT_EQ(st.bpIterations, sum.bpIterations);
    // ...while grouping counters reflect the pooling: duplicates now
    // dedupe across chunks, and the pool packs at least as tightly.
    EXPECT_GE(st.memoHits, sum.memoHits);
    EXPECT_EQ(st.stagedChunks, kChunks - 1);
    if (st.waveLaneSlots != 0) {
        EXPECT_LE(st.waveGroups, sum.waveGroups);
        const size_t distinct =
            st.decodes - st.trivialShots - st.memoHits;
        EXPECT_EQ(st.waveLanesFilled, distinct);
        // Full pool, one ragged tail group at most.
        EXPECT_LE(st.waveLaneSlots - st.waveLanesFilled,
                  staged.waveLaneWidth() - 1);
    }
}

TEST(WaveDecoder, RunChunkGroupMatchesPerChunkOutcomes)
{
    // The campaign's staged group job must count exactly what running
    // each chunk alone counts, and reading chunks through the group
    // must leave the sampler's totals unchanged.
    const auto dem = surface13Dem(0.015);
    BpOptions bp;
    bp.waveLanes = 8;

    std::vector<ChunkPlan> plans(4);
    for (size_t k = 0; k < plans.size(); ++k) {
        plans[k].index = k;
        plans[k].shots = 40 + 8 * k;
        plans[k].seed = chunkSeed(0xfeed, k);
    }

    size_t refShots = 0;
    size_t refFailures = 0;
    {
        BpOsdDecoder decoder(dem, bp);
        ShotBatch batch;
        std::vector<uint64_t> predicted;
        for (const ChunkPlan& plan : plans) {
            const ChunkOutcome o =
                runChunk(dem, plan, decoder, batch, predicted);
            refShots += o.shots;
            refFailures += o.failures;
        }
    }

    BpOsdDecoder decoder(dem, bp);
    std::vector<ShotBatch> batches;
    const ChunkOutcome grouped = runChunkGroup(
        dem, plans.data(), plans.size(), decoder, batches);
    EXPECT_EQ(grouped.shots, refShots);
    EXPECT_EQ(grouped.failures, refFailures);
    EXPECT_EQ(decoder.stats().stagedChunks, plans.size() - 1);

    // Degenerate group of one behaves exactly like runChunk.
    BpOsdDecoder single(dem, bp);
    std::vector<ShotBatch> oneBatch;
    const ChunkOutcome lone =
        runChunkGroup(dem, plans.data(), 1, single, oneBatch);
    BpOsdDecoder refDecoder(dem, bp);
    ShotBatch refBatch;
    std::vector<uint64_t> refPredicted;
    const ChunkOutcome ref =
        runChunk(dem, plans[0], refDecoder, refBatch, refPredicted);
    EXPECT_EQ(lone.shots, ref.shots);
    EXPECT_EQ(lone.failures, ref.failures);
    EXPECT_EQ(single.stats().stagedChunks, 0u);
}

} // namespace
} // namespace cyclone
