/**
 * @file
 * Tests for distributed campaign execution: spool serde and claim
 * protocol, shareable artifact serialization, coordinator/worker
 * bit-identity against single-process runs, lease expiry and reclaim
 * after a killed worker, and fleet-wide exactly-once compile
 * accounting through the shared store.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/artifact_cache.h"
#include "campaign/campaign.h"
#include "campaign/campaign_io.h"
#include "campaign/content_hash.h"
#include "campaign/coordinator.h"
#include "campaign/fault_plan.h"
#include "campaign/spool.h"
#include "dem/dem.h"

namespace cyclone {
namespace {

/** Fresh scratch directory under TMPDIR, removed on destruction. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const char* tag)
    {
        const char* base = std::getenv("TMPDIR");
        path = std::string(base != nullptr ? base : "/tmp") +
            "/cyclone-" + tag + "-" + std::to_string(::getpid());
        std::string cmd = "rm -rf '" + path + "'";
        std::system(cmd.c_str());
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + path + "'";
        std::system(cmd.c_str());
    }
};

/**
 * A spec exercised both in-process and through a spool. Explicit
 * latency (arch = none) keeps it compile-free; two p points on two
 * codes give four tasks with distinct DEMs; staging_chunks = 2 with
 * chunks_per_wave = 4 exercises shard/staging alignment; the second
 * task's adaptive target stops early, exercising multi-wave merging.
 */
const char* kSpoolSpec = R"(name = spool-suite
seed = 13

[task]
id = s3
code = surface3
arch = none
p = 0.02, 0.05
chunk_shots = 50
chunks_per_wave = 4
max_shots = 600
staging_chunks = 2
bp = minsum

[task]
id = s3adapt
code = surface3
arch = none
p = 0.08
chunk_shots = 64
chunks_per_wave = 3
max_shots = 5000
target_rel_err = 0.3
bp = minsum
)";

/** Fork `count` worker processes against `spool`. Children never
 *  return: they run the worker loop and _exit. */
std::vector<pid_t>
forkWorkers(const std::string& spool, size_t count,
            double startDelaySeconds = 0.0, bool dieAfterClaim = false)
{
    std::vector<pid_t> pids;
    for (size_t w = 0; w < count; ++w) {
        const pid_t pid = ::fork();
        if (pid == 0) {
            if (startDelaySeconds > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(startDelaySeconds));
            WorkerOptions opts;
            opts.spool = spool;
            opts.threads = 2;
            opts.workerId = "w" + std::to_string(::getpid());
            opts.pollSeconds = 0.01;
            opts.dieAfterClaim = dieAfterClaim;
            int rc = 0;
            try {
                runSpoolWorker(opts);
            } catch (...) {
                rc = 1;
            }
            ::_exit(rc);
        }
        pids.push_back(pid);
    }
    return pids;
}

void
reapWorkers(const std::vector<pid_t>& pids, bool expectClean = true)
{
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        if (expectClean) {
            EXPECT_TRUE(WIFEXITED(status));
            EXPECT_EQ(WEXITSTATUS(status), 0);
        }
    }
}

void
expectTasksIdentical(const CampaignResult& a, const CampaignResult& b)
{
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t i = 0; i < a.tasks.size(); ++i) {
        const TaskResult& x = a.tasks[i];
        const TaskResult& y = b.tasks[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.contentHash, y.contentHash);
        EXPECT_EQ(x.logicalErrorRate.trials, y.logicalErrorRate.trials);
        EXPECT_EQ(x.logicalErrorRate.successes,
                  y.logicalErrorRate.successes);
        EXPECT_EQ(x.logicalErrorRate.rate, y.logicalErrorRate.rate);
        EXPECT_EQ(x.wilson, y.wilson);
        EXPECT_EQ(x.perRoundErrorRate, y.perRoundErrorRate);
        EXPECT_EQ(x.chunks, y.chunks);
        EXPECT_EQ(x.stoppedEarly, y.stoppedEarly);
        EXPECT_EQ(x.demDetectors, y.demDetectors);
        EXPECT_EQ(x.demMechanisms, y.demMechanisms);
        EXPECT_EQ(x.decoder.decodes, y.decoder.decodes);
        EXPECT_EQ(x.decoder.bpConverged, y.decoder.bpConverged);
        EXPECT_EQ(x.decoder.osdInvocations, y.decoder.osdInvocations);
        EXPECT_EQ(x.decoder.osdFailures, y.decoder.osdFailures);
        EXPECT_EQ(x.decoder.trivialShots, y.decoder.trivialShots);
        EXPECT_EQ(x.decoder.memoHits, y.decoder.memoHits);
        EXPECT_EQ(x.decoder.bpIterations, y.decoder.bpIterations);
        EXPECT_EQ(x.decoder.waveGroups, y.decoder.waveGroups);
        EXPECT_EQ(x.decoder.waveLaneSlots, y.decoder.waveLaneSlots);
        EXPECT_EQ(x.decoder.waveLanesFilled,
                  y.decoder.waveLanesFilled);
        EXPECT_EQ(x.decoder.osdBatchGroups, y.decoder.osdBatchGroups);
        EXPECT_EQ(x.decoder.osdSharedPivots,
                  y.decoder.osdSharedPivots);
        EXPECT_EQ(x.decoder.stagedChunks, y.decoder.stagedChunks);
        EXPECT_EQ(x.error, y.error);
    }
}

TEST(SpoolSerde, ShardDescriptorRoundTrip)
{
    ShardDescriptor d;
    d.task = 3;
    d.shard = 17;
    d.firstChunk = 42;
    d.numChunks = 6;
    d.chunkShots = 128;
    d.contentHash = 0xdeadbeefcafef00dull;
    d.taskSeed = 0x0123456789abcdefull;
    const ShardDescriptor r =
        parseShardDescriptor(formatShardDescriptor(d));
    EXPECT_EQ(r.task, d.task);
    EXPECT_EQ(r.shard, d.shard);
    EXPECT_EQ(r.firstChunk, d.firstChunk);
    EXPECT_EQ(r.numChunks, d.numChunks);
    EXPECT_EQ(r.chunkShots, d.chunkShots);
    EXPECT_EQ(r.contentHash, d.contentHash);
    EXPECT_EQ(r.taskSeed, d.taskSeed);
    EXPECT_THROW(parseShardDescriptor("garbage"), std::runtime_error);
    EXPECT_THROW(parseShardDescriptor("cyclone-shard v1\nshard 1 2\n"),
                 std::runtime_error);
}

TEST(SpoolSerde, ShardRecordRoundTripAndBackCompat)
{
    ShardRecord r;
    r.task = 2;
    r.shard = 9;
    r.contentHash = 0xfeedface12345678ull;
    r.shots = 640;
    r.failures = 13;
    r.seconds = 0.6251397;
    r.decoder.decodes = 640;
    r.decoder.bpConverged = 600;
    r.decoder.osdInvocations = 40;
    r.decoder.osdFailures = 2;
    r.decoder.trivialShots = 100;
    r.decoder.memoHits = 50;
    r.decoder.bpIterations = 9000;
    r.decoder.waveGroups = 11;
    r.decoder.waveLaneSlots = 88;
    r.decoder.waveLanesFilled = 80;
    r.decoder.osdBatchGroups = 5;
    r.decoder.osdSharedPivots = 77;
    r.decoder.stagedChunks = 10;
    r.decoder.backend = "avx512";

    const ShardRecord p = parseShardRecord(formatShardRecord(r));
    EXPECT_EQ(p.task, r.task);
    EXPECT_EQ(p.shard, r.shard);
    EXPECT_EQ(p.contentHash, r.contentHash);
    EXPECT_EQ(p.shots, r.shots);
    EXPECT_EQ(p.failures, r.failures);
    EXPECT_EQ(p.seconds, r.seconds);
    EXPECT_EQ(p.decoder.decodes, r.decoder.decodes);
    EXPECT_EQ(p.decoder.osdSharedPivots, r.decoder.osdSharedPivots);
    EXPECT_EQ(p.decoder.stagedChunks, r.decoder.stagedChunks);
    EXPECT_EQ(p.decoder.backend, "avx512");

    // Back-compat *within* the checksummed envelope: a short decoder
    // line (an older counter layout) loads with the rest zero-filled.
    const std::string old = withCrcLine(
        "cyclone-shard-result v2\n"
        "shard 1 2 00000000000000ff 100 5 1.5\n"
        "decoder 100 90 10 1\n");
    const ShardRecord q = parseShardRecord(old);
    EXPECT_EQ(q.shots, 100u);
    EXPECT_EQ(q.decoder.decodes, 100u);
    EXPECT_EQ(q.decoder.osdFailures, 1u);
    EXPECT_EQ(q.decoder.trivialShots, 0u);
    EXPECT_EQ(q.decoder.stagedChunks, 0u);

    // A future record with MORE decoder fields than we know must be
    // rejected, never silently truncated.
    const std::string future = withCrcLine(
        "cyclone-shard-result v2\n"
        "shard 1 2 00000000000000ff 100 5 1.5\n"
        "decoder 1 2 3 4 5 6 7 8 9 10 11 12 13 14\n");
    EXPECT_THROW(parseShardRecord(future), std::runtime_error);

    // Too few is malformed too (below the oldest known format).
    const std::string tiny = withCrcLine(
        "cyclone-shard-result v2\n"
        "shard 1 2 00000000000000ff 100 5 1.5\n"
        "decoder 1 2\n");
    EXPECT_THROW(parseShardRecord(tiny), std::runtime_error);

    // An un-checksummed record (the pre-CRC v1 format, or a write
    // torn inside the payload) is corrupt, not merely unversioned:
    // torn-write detection hangs on the CRC line being mandatory.
    const std::string v1 =
        "cyclone-shard-result v1\n"
        "shard 1 2 00000000000000ff 100 5 1.5\n"
        "decoder 100 90 10 1\n";
    EXPECT_THROW(parseShardRecord(v1), CorruptSpoolError);

    // Flipping one payload byte fails the checksum.
    std::string flipped = formatShardRecord(r);
    flipped[flipped.find("640")] = '9';
    EXPECT_THROW(parseShardRecord(flipped), CorruptSpoolError);

    // Truncation anywhere inside the payload fails the checksum (or
    // removes it entirely); only trailing-newline loss can survive,
    // and that leaves a complete, valid record.
    const std::string whole = formatShardRecord(r);
    for (size_t cut = 1; cut + 1 < whole.size(); cut += 7)
        EXPECT_THROW(parseShardRecord(whole.substr(0, cut)),
                     std::runtime_error)
            << "cut at " << cut;
}

TEST(SpoolSerde, ManifestRoundTrip)
{
    SpoolManifest m;
    m.name = "spool suite campaign";
    m.seed = 0xabcdef;
    m.specHash = 0x1122334455667788ull;
    m.leaseSeconds = 2.5;
    m.retryAttempts = 9;
    m.retryBaseMs = 12.5;
    const SpoolManifest p = parseManifest(formatManifest(m));
    EXPECT_EQ(p.name, m.name);
    EXPECT_EQ(p.seed, m.seed);
    EXPECT_EQ(p.specHash, m.specHash);
    EXPECT_EQ(p.leaseSeconds, m.leaseSeconds);
    EXPECT_EQ(p.retryAttempts, m.retryAttempts);
    EXPECT_EQ(p.retryBaseMs, m.retryBaseMs);
}

TEST(SpoolSerde, WorkerStatsRoundTrip)
{
    WorkerReport r;
    r.shardsRun = 7;
    r.shots = 4200;
    r.failures = 33;
    r.cache.compileHits = 1;
    r.cache.compileMisses = 2;
    r.cache.compileStoreHits = 2;
    r.cache.compileBytes = 12345;
    r.cache.demHits = 3;
    r.cache.demMisses = 4;
    r.cache.demStoreHits = 4;
    r.cache.demBytes = 6789;
    r.cache.quarantinedBlobs = 2;
    r.transientRetries = 5;
    r.promotions = 1;
    const WorkerReport p = parseWorkerStats(formatWorkerStats(r));
    EXPECT_EQ(p.shardsRun, r.shardsRun);
    EXPECT_EQ(p.shots, r.shots);
    EXPECT_EQ(p.failures, r.failures);
    EXPECT_EQ(p.cache.compileMisses, r.cache.compileMisses);
    EXPECT_EQ(p.cache.compileStoreHits, r.cache.compileStoreHits);
    EXPECT_EQ(p.cache.demBytes, r.cache.demBytes);
    EXPECT_EQ(p.cache.quarantinedBlobs, r.cache.quarantinedBlobs);
    EXPECT_EQ(p.transientRetries, r.transientRetries);
    EXPECT_EQ(p.promotions, r.promotions);
}

TEST(SpoolSerde, ShardPlanningHelpers)
{
    StoppingRule rule;
    rule.chunkShots = 100;
    rule.chunksPerWave = 8;
    rule.maxShots = 1050;
    rule.stagingChunks = 3;
    rule.shardChunks = 4;
    // 4 rounded up to a multiple of staging (3) is 6.
    EXPECT_EQ(effectiveShardChunks(rule), 6u);
    rule.shardChunks = 0; // auto: ceil(8/4)=2 -> rounded to 3
    EXPECT_EQ(effectiveShardChunks(rule), 3u);
    rule.stagingChunks = 1;
    EXPECT_EQ(effectiveShardChunks(rule), 2u);

    // Chunk shots mirror AdaptiveSampler: full chunks until the
    // budget, then a short tail, then zero.
    EXPECT_EQ(chunkShotsAt(rule, 0), 100u);
    EXPECT_EQ(chunkShotsAt(rule, 9), 100u);
    EXPECT_EQ(chunkShotsAt(rule, 10), 50u);
    EXPECT_EQ(chunkShotsAt(rule, 11), 0u);
}

TEST(SpoolProtocol, ClaimCompleteAndRecords)
{
    ScratchDir scratch("spool-proto");
    Spool spool(scratch.path);
    SpoolManifest m;
    m.name = "proto";
    m.seed = 1;
    m.leaseSeconds = 30.0;
    spool.initialize(m, "name = proto\n[task]\ncode = surface3\n");
    EXPECT_TRUE(spool.initialized());
    EXPECT_FALSE(spool.done());

    // Re-initializing with the same spec is idempotent; a different
    // spec is a hard error (two campaigns, one directory).
    spool.initialize(m, "name = proto\n[task]\ncode = surface3\n");
    EXPECT_THROW(spool.initialize(m, "name = other\n"),
                 std::runtime_error);

    ShardDescriptor d;
    d.task = 0;
    d.shard = 0;
    d.firstChunk = 0;
    d.numChunks = 4;
    d.chunkShots = 100;
    d.contentHash = 0x42;
    d.taskSeed = 0x99;
    EXPECT_TRUE(spool.publishShard(d));
    EXPECT_FALSE(spool.publishShard(d)) << "already open";
    ASSERT_EQ(spool.openShards().size(), 1u);
    const std::string id = spool.openShards()[0];
    EXPECT_EQ(id, shardId(0, 0));

    ShardDescriptor claimed;
    ASSERT_TRUE(spool.claimShard(id, claimed));
    EXPECT_EQ(claimed.numChunks, 4u);
    EXPECT_EQ(claimed.contentHash, 0x42u);
    ShardDescriptor loser;
    EXPECT_FALSE(spool.claimShard(id, loser)) << "second claim";
    EXPECT_TRUE(spool.openShards().empty());
    EXPECT_GE(spool.claimAge(id), 0.0);
    spool.heartbeat(id);
    EXPECT_LT(spool.claimAge(id), 5.0);

    ShardRecord rec;
    rec.task = 0;
    rec.shard = 0;
    rec.contentHash = 0x42;
    rec.shots = 400;
    rec.failures = 7;
    EXPECT_FALSE(spool.hasRecord(id));
    spool.completeShard(id, rec);
    EXPECT_TRUE(spool.hasRecord(id));
    EXPECT_TRUE(spool.claimedShards().empty());
    EXPECT_FALSE(spool.publishShard(d)) << "already has a record";
    const ShardRecord loaded = spool.readRecord(id);
    EXPECT_EQ(loaded.shots, 400u);
    EXPECT_EQ(loaded.failures, 7u);

    // Reclaim path: publish, claim, reclaim -> open again.
    d.shard = 1;
    ASSERT_TRUE(spool.publishShard(d));
    const std::string id2 = shardId(0, 1);
    ASSERT_TRUE(spool.claimShard(id2, claimed));
    EXPECT_TRUE(spool.reclaimShard(id2));
    EXPECT_FALSE(spool.reclaimShard(id2)) << "second reclaim";
    ASSERT_EQ(spool.openShards().size(), 1u);
    EXPECT_EQ(spool.openShards()[0], id2);
    EXPECT_LT(spool.claimAge(id2), 0.0) << "no longer claimed";

    spool.markDone();
    EXPECT_TRUE(spool.done());
}

TEST(SpoolProtocol, CoordinatorLeaseHasExactlyOneWinner)
{
    ScratchDir scratch("spool-lease-proto");
    Spool spool(scratch.path);
    SpoolManifest m;
    m.name = "lease";
    m.seed = 1;
    spool.initialize(m, "name = lease\n");

    EXPECT_FALSE(spool.hasCoordinatorLease());
    EXPECT_LT(spool.coordinatorLeaseAge(), 0.0);
    EXPECT_TRUE(spool.acquireCoordinatorLease("alice"));
    EXPECT_TRUE(spool.hasCoordinatorLease());
    EXPECT_FALSE(spool.acquireCoordinatorLease("bob"))
        << "O_EXCL create must have exactly one winner";
    EXPECT_GE(spool.coordinatorLeaseAge(), 0.0);

    // Releasing someone else's lease is a no-op.
    spool.releaseCoordinatorLease("bob");
    EXPECT_TRUE(spool.hasCoordinatorLease());

    // A steal replaces the (presumed dead) owner's lease.
    EXPECT_TRUE(spool.stealCoordinatorLease("bob"));
    EXPECT_TRUE(spool.hasCoordinatorLease());
    spool.releaseCoordinatorLease("bob");
    EXPECT_FALSE(spool.hasCoordinatorLease());
    EXPECT_TRUE(spool.acquireCoordinatorLease("carol"));
}

TEST(SpoolProtocol, QuarantineReviveAndRetire)
{
    ScratchDir scratch("spool-quarantine");
    Spool spool(scratch.path);
    SpoolManifest m;
    m.name = "quarantine";
    m.seed = 1;
    spool.initialize(m, "name = quarantine\n");

    ShardDescriptor d;
    d.task = 0;
    d.shard = 0;
    d.numChunks = 1;
    d.chunkShots = 10;
    d.contentHash = 0x1;
    ASSERT_TRUE(spool.publishShard(d));
    const std::string id = shardId(0, 0);

    ShardDescriptor got;
    ASSERT_TRUE(spool.claimShard(id, got));
    ShardRecord rec;
    rec.task = 0;
    rec.shard = 0;
    rec.contentHash = 0x1;
    rec.shots = 10;
    spool.completeShard(id, rec);

    // Quarantining the record revives nothing by itself; the revive
    // moves the done/ tombstone back to open/ so the shard can be
    // claimed and re-executed.
    ASSERT_TRUE(spool.hasRecord(id));
    EXPECT_TRUE(spool.quarantineRecord(id));
    EXPECT_FALSE(spool.hasRecord(id));
    EXPECT_FALSE(spool.quarantineRecord(id)) << "already moved";
    EXPECT_TRUE(spool.reviveShard(id));
    EXPECT_FALSE(spool.reviveShard(id)) << "already revived";
    ASSERT_EQ(spool.openShards().size(), 1u);

    // Re-execute and retire without a record (task finished).
    ASSERT_TRUE(spool.claimShard(id, got));
    EXPECT_TRUE(spool.retireClaim(id));
    EXPECT_TRUE(spool.openShards().empty());
    EXPECT_TRUE(spool.claimedShards().empty());

    // Quarantine the shard outright (claimed/ first, then open/).
    EXPECT_TRUE(spool.reviveShard(id));
    EXPECT_TRUE(spool.quarantineShard(id));
    EXPECT_FALSE(spool.quarantineShard(id)) << "nothing left";
    const std::vector<std::string> q = spool.quarantined();
    ASSERT_EQ(q.size(), 2u) << "descriptor + record";
}

TEST(SpoolProtocol, ReclaimCountPersistsAcrossHandles)
{
    ScratchDir scratch("spool-reclaims");
    Spool spool(scratch.path);
    SpoolManifest m;
    m.name = "reclaims";
    m.seed = 1;
    spool.initialize(m, "name = reclaims\n");

    const std::string id = shardId(0, 7);
    EXPECT_EQ(spool.reclaimCount(id), 0u);
    EXPECT_EQ(spool.bumpReclaimCount(id), 1u);
    EXPECT_EQ(spool.bumpReclaimCount(id), 2u);
    EXPECT_EQ(spool.reclaimCount(id), 2u);

    // A takeover coordinator (fresh handle) sees the same counter —
    // poison shards survive coordinator failover.
    Spool other(scratch.path);
    EXPECT_EQ(other.reclaimCount(id), 2u);
    EXPECT_EQ(other.bumpReclaimCount(id), 3u);
}

TEST(SpoolProtocol, ClaimAgeSurvivesWallClockStep)
{
    ScratchDir scratch("spool-monotonic");
    Spool spool(scratch.path);
    SpoolManifest m;
    m.name = "monotonic";
    m.seed = 1;
    spool.initialize(m, "name = monotonic\n");

    ShardDescriptor d;
    d.task = 0;
    d.shard = 0;
    d.numChunks = 1;
    d.chunkShots = 10;
    d.contentHash = 0x1;
    ASSERT_TRUE(spool.publishShard(d));
    const std::string id = shardId(0, 0);
    ShardDescriptor got;
    ASSERT_TRUE(spool.claimShard(id, got));

    EXPECT_GE(spool.claimAge(id), 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_GE(spool.claimAge(id), 0.05);

    // Simulate a wall-clock step: rewrite the claim's mtime one hour
    // into the past, as an NTP correction (or a worker on a skewed
    // clock heartbeating) would. A wall-clock implementation would
    // read ~3600s and instantly expire the live lease; the monotonic
    // observation scheme just sees "heartbeat changed" and restarts
    // the age from zero.
    const std::string claimPath = scratch.path + "/claimed/" + id;
    struct timespec past[2];
    ASSERT_EQ(::clock_gettime(CLOCK_REALTIME, &past[0]), 0);
    past[0].tv_sec -= 3600;
    past[1] = past[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, claimPath.c_str(), past, 0), 0);
    EXPECT_LT(spool.claimAge(id), 1.0)
        << "a clock step must not expire a live lease";
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const double aged = spool.claimAge(id);
    EXPECT_GE(aged, 0.05);
    EXPECT_LT(aged, 1.0);

    // Same for a step into the future (age must never go negative).
    struct timespec future[2];
    ASSERT_EQ(::clock_gettime(CLOCK_REALTIME, &future[0]), 0);
    future[0].tv_sec += 3600;
    future[1] = future[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, claimPath.c_str(), future, 0), 0);
    EXPECT_GE(spool.claimAge(id), 0.0);
    EXPECT_LT(spool.claimAge(id), 1.0);

    // A vanished claim still reads negative.
    ASSERT_TRUE(spool.reclaimShard(id));
    EXPECT_LT(spool.claimAge(id), 0.0);
}

TEST(SpoolProtocol, WorkerHealthAgeSurvivesWallClockStep)
{
    // End-of-run health classification ("did this worker's heartbeat
    // file stop updating?") must use the same monotonic observation
    // history as shard claims. With wall-clock mtime arithmetic an
    // NTP step during the campaign would misreport every live worker
    // as lost.
    ScratchDir scratch("spool-health-monotonic");
    Spool spool(scratch.path);
    SpoolManifest m;
    m.name = "health";
    m.seed = 1;
    spool.initialize(m, "name = health\n");

    EXPECT_LT(spool.workerHealthAge("w1"), 0.0)
        << "missing health file must read negative";

    spool.writeFile("workers/w1", "health-v1\nstate running\n");
    EXPECT_GE(spool.workerHealthAge("w1"), 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_GE(spool.workerHealthAge("w1"), 0.05);

    // Wall-clock step one hour into the past: a wall-clock
    // implementation reads ~3600s and classifies the worker as lost;
    // the monotonic scheme sees "file changed" and restarts from 0.
    const std::string healthPath = scratch.path + "/workers/w1";
    struct timespec past[2];
    ASSERT_EQ(::clock_gettime(CLOCK_REALTIME, &past[0]), 0);
    past[0].tv_sec -= 3600;
    past[1] = past[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, healthPath.c_str(), past, 0), 0);
    EXPECT_LT(spool.workerHealthAge("w1"), 1.0)
        << "a clock step must not mark a live worker lost";
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const double aged = spool.workerHealthAge("w1");
    EXPECT_GE(aged, 0.05);
    EXPECT_LT(aged, 1.0);

    // A step into the future must not produce negative ages either.
    struct timespec future[2];
    ASSERT_EQ(::clock_gettime(CLOCK_REALTIME, &future[0]), 0);
    future[0].tv_sec += 3600;
    future[1] = future[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, healthPath.c_str(), future, 0), 0);
    EXPECT_GE(spool.workerHealthAge("w1"), 0.0);
    EXPECT_LT(spool.workerHealthAge("w1"), 1.0);

    // A fresh heartbeat (mtime change) restarts the age again.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    spool.writeFile("workers/w1", "health-v1\nstate running\n");
    EXPECT_LT(spool.workerHealthAge("w1"), 0.02);
}

TEST(SpoolProtocol, JournalRoundTripThroughSpool)
{
    ScratchDir scratch("spool-journal");
    Spool spool(scratch.path);
    SpoolManifest m;
    m.name = "journal";
    m.seed = 1;
    spool.initialize(m, "name = journal\n");

    std::string out;
    EXPECT_FALSE(spool.readJournal(out));

    JournalEntry e;
    e.task = 2;
    e.contentHash = 0xabcdef0123456789ull;
    e.shots = 1200;
    e.failures = 17;
    e.chunks = 24;
    e.stoppedEarly = true;
    e.sampleSeconds = 0.125;
    e.decoder.decodes = 1200;
    e.decoder.bpIterations = 31337;
    e.decoder.backend = "avx512";
    spool.writeJournal(formatCoordJournal({e}));

    ASSERT_TRUE(spool.readJournal(out));
    const std::vector<JournalEntry> back = parseCoordJournal(out);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].task, e.task);
    EXPECT_EQ(back[0].contentHash, e.contentHash);
    EXPECT_EQ(back[0].shots, e.shots);
    EXPECT_EQ(back[0].failures, e.failures);
    EXPECT_EQ(back[0].chunks, e.chunks);
    EXPECT_EQ(back[0].stoppedEarly, e.stoppedEarly);
    EXPECT_EQ(back[0].sampleSeconds, e.sampleSeconds);
    EXPECT_EQ(back[0].decoder.decodes, e.decoder.decodes);
    EXPECT_EQ(back[0].decoder.bpIterations, e.decoder.bpIterations);
    EXPECT_EQ(back[0].decoder.backend, "avx512");

    // A corrupted journal fails its checksum.
    std::string torn = formatCoordJournal({e});
    torn[torn.size() / 2] ^= 1;
    EXPECT_THROW(parseCoordJournal(torn), CorruptSpoolError);
    EXPECT_THROW(parseCoordJournal(torn.substr(0, torn.size() - 9)),
                 std::runtime_error);
}

TEST(ArtifactSerde, DemRoundTripIsBitExact)
{
    DetectorErrorModel dem;
    dem.numDetectors = 5;
    dem.numObservables = 2;
    dem.mechanisms.push_back({0.001, {0, 3}, 0b01});
    dem.mechanisms.push_back({0.25, {1}, 0});
    dem.mechanisms.push_back({1e-9, {0, 1, 2, 3, 4}, 0b11});
    const DetectorErrorModel r = deserializeDem(serializeDem(dem));
    EXPECT_EQ(r.numDetectors, dem.numDetectors);
    EXPECT_EQ(r.numObservables, dem.numObservables);
    ASSERT_EQ(r.mechanisms.size(), dem.mechanisms.size());
    for (size_t i = 0; i < dem.mechanisms.size(); ++i) {
        EXPECT_EQ(r.mechanisms[i].probability,
                  dem.mechanisms[i].probability);
        EXPECT_EQ(r.mechanisms[i].detectors,
                  dem.mechanisms[i].detectors);
        EXPECT_EQ(r.mechanisms[i].observables,
                  dem.mechanisms[i].observables);
    }
    EXPECT_THROW(deserializeDem("not a blob"), std::runtime_error);
    EXPECT_THROW(deserializeDem(serializeDem(dem).substr(0, 20)),
                 std::runtime_error);
}

TEST(ArtifactSerde, CompileResultRoundTripPreservesScheduleHash)
{
    CompileResult c;
    c.compilerName = "test-compiler";
    c.topologyName = "test-topology";
    c.serialized.gateUs = 12.5;
    c.serialized.shuttleUs = 3.25;
    c.serialized.junctionUs = 0.125;
    c.serialized.swapUs = 7.75;
    c.serialized.measureUs = 80.0;
    c.serialized.prepUs = 1.0;
    c.numTraps = 9;
    c.numJunctions = 4;
    c.numAncilla = 12;
    c.trapRoadblocks = 3;
    c.junctionRoadblocks = 1;
    c.rebalances = 2;
    c.gateOps = 30;
    c.shuttleOps = 20;
    c.swapOps = 5;
    c.schedule.numResources = 13;
    c.schedule.numIons = 25;
    c.schedule.ops.push_back({OpCategory::Gate, 2, 1, 7, 0.0,
                              0.0314159265358979312, 0.0, true});
    c.schedule.ops.push_back({OpCategory::Shuttle, kNoResource, 3,
                              kNoIon, 1.0 / 3.0, 86.0, 0.5, false});
    c.schedule.ops.push_back({OpCategory::Measure, 12, 24, kNoIon,
                              99.25, 120.0, 1e-17, true});
    c.deriveTimingFromSchedule();

    const CompileResult r =
        deserializeCompileResult(serializeCompileResult(c));
    EXPECT_EQ(r.compilerName, c.compilerName);
    EXPECT_EQ(r.topologyName, c.topologyName);
    EXPECT_EQ(r.execTimeUs, c.execTimeUs);
    EXPECT_EQ(r.serialized.gateUs, c.serialized.gateUs);
    EXPECT_EQ(r.serialized.prepUs, c.serialized.prepUs);
    EXPECT_EQ(r.numTraps, c.numTraps);
    EXPECT_EQ(r.numAncilla, c.numAncilla);
    EXPECT_EQ(r.trapRoadblocks, c.trapRoadblocks);
    EXPECT_EQ(r.rebalances, c.rebalances);
    EXPECT_EQ(r.gateOps, c.gateOps);
    EXPECT_EQ(r.swapOps, c.swapOps);
    ASSERT_EQ(r.schedule.ops.size(), c.schedule.ops.size());
    EXPECT_EQ(r.schedule.ops[1].resource, kNoResource);
    EXPECT_EQ(r.schedule.ops[1].counted, false);
    EXPECT_EQ(r.schedule.ops[2].waitUs, 1e-17);
    // The IR's content hash keys per-qubit idle DEMs: it must
    // round-trip bit-exactly or store-loaded compiles would rebuild
    // (or worse, mis-key) schedule-derived artifacts.
    EXPECT_EQ(hashTimedSchedule(r.schedule),
              hashTimedSchedule(c.schedule));
    EXPECT_THROW(deserializeCompileResult("bogus"),
                 std::runtime_error);
}

TEST(ArtifactStore, SecondCacheLoadsInsteadOfBuilding)
{
    ScratchDir scratch("artifact-store");
    ::mkdir(scratch.path.c_str(), 0777);

    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.mechanisms.push_back({0.01, {0, 1}, 1});

    int builds = 0;
    auto build = [&] {
        ++builds;
        return dem;
    };

    ArtifactCache first;
    first.attachStore(scratch.path);
    EXPECT_EQ(first.storeDir(), scratch.path);
    const auto a = first.getOrBuildDem(0x7777, build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.stats().demMisses, 1u);
    EXPECT_EQ(first.stats().demStoreHits, 0u);
    EXPECT_GT(first.stats().demBytes, 0u);

    // A different cache (as another process would have) must satisfy
    // the miss from the store without running the builder.
    ArtifactCache second;
    second.attachStore(scratch.path);
    const auto b = second.getOrBuildDem(0x7777, build);
    EXPECT_EQ(builds, 1) << "store hit must not rebuild";
    EXPECT_EQ(second.stats().demMisses, 1u);
    EXPECT_EQ(second.stats().demStoreHits, 1u);
    EXPECT_EQ(second.stats().demBytes, first.stats().demBytes);
    EXPECT_EQ(b->mechanisms[0].probability,
              a->mechanisms[0].probability);

    // A corrupt store blob falls through to a rebuild.
    const std::string blobPath = scratch.path + "/dem-" +
        []() {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%016llx",
                          0x7777ull);
            return std::string(buf);
        }() +
        ".bin";
    spoolWriteAtomic(blobPath, "corrupted");
    ArtifactCache third;
    third.attachStore(scratch.path);
    const auto c = third.getOrBuildDem(0x7777, build);
    EXPECT_EQ(builds, 2) << "corrupt blob must rebuild";
    EXPECT_EQ(third.stats().demStoreHits, 0u);
    EXPECT_EQ(c->numDetectors, 2u);
}

CampaignResult
runDistributed(const std::string& spoolDir, size_t workers)
{
    CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
    spec.spool = spoolDir;
    spec.leaseSeconds = 30.0;
    const std::vector<pid_t> pids = forkWorkers(spoolDir, workers);
    CampaignResult result;
    try {
        result = runDistributedCampaign(spec, kSpoolSpec);
    } catch (...) {
        for (const pid_t pid : pids)
            ::waitpid(pid, nullptr, 0);
        throw;
    }
    for (const pid_t pid : pids) {
        int status = 0;
        EXPECT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
    return result;
}

TEST(DistributedCampaign, TwoWorkersBitIdenticalToSingleProcess)
{
    CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
    spec.threads = 2;
    const CampaignResult reference = runCampaign(spec);
    for (const TaskResult& t : reference.tasks)
        ASSERT_TRUE(t.error.empty()) << t.error;

    ScratchDir scratch("spool-2w");
    const CampaignResult dist = runDistributed(scratch.path, 2);
    expectTasksIdentical(reference, dist);
    EXPECT_GT(dist.spool.shardsPublished, 0u);
    EXPECT_EQ(dist.spool.shardsMerged, dist.spool.shardsPublished);
    EXPECT_EQ(dist.spool.recordsReused, 0u);
}

TEST(DistributedCampaign, FourWorkersBitIdenticalToSingleProcess)
{
    CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
    spec.threads = 4;
    const CampaignResult reference = runCampaign(spec);

    ScratchDir scratch("spool-4w");
    const CampaignResult dist = runDistributed(scratch.path, 4);
    expectTasksIdentical(reference, dist);
}

TEST(DistributedCampaign, LeaseExpiryReclaimsKilledWorkersShard)
{
    CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
    spec.threads = 2;
    const CampaignResult reference = runCampaign(spec);

    ScratchDir scratch("spool-lease");
    CampaignSpec dspec = parseCampaignSpec(kSpoolSpec);
    dspec.spool = scratch.path;
    dspec.leaseSeconds = 0.5;

    // Worker A claims the first shard it sees and dies without
    // completing or heartbeating it. Worker B starts 2s later (after
    // A's lease lapsed) and drains the whole spool.
    const std::vector<pid_t> dying =
        forkWorkers(scratch.path, 1, 0.0, /*dieAfterClaim=*/true);
    const std::vector<pid_t> healthy =
        forkWorkers(scratch.path, 1, 2.0);

    CampaignResult dist;
    try {
        dist = runDistributedCampaign(dspec, kSpoolSpec);
    } catch (...) {
        for (const pid_t pid : dying)
            ::waitpid(pid, nullptr, 0);
        for (const pid_t pid : healthy)
            ::waitpid(pid, nullptr, 0);
        throw;
    }
    reapWorkers(dying);
    reapWorkers(healthy);

    EXPECT_GE(dist.spool.shardsReclaimed, 1u)
        << "the dead worker's claim must have been reclaimed";
    expectTasksIdentical(reference, dist);

    // Health roll-up: the killed worker's file went stale mid-state,
    // the survivor checked out cleanly.
    EXPECT_GE(dist.spool.workersLost, 1u);
    EXPECT_GE(dist.spool.workersHealthy, 1u);
    EXPECT_EQ(dist.spool.shardsPoisoned, 0u);
}

TEST(DistributedCampaign, SharedCacheCompilesEachPointExactlyOnce)
{
    // A compiled campaign (arch = cyclone): one distinct compile and
    // one distinct DEM per p, shared fleet-wide through the store.
    const char* spec_text = R"(name = spool-compile
seed = 21

[task]
code = surface3
arch = cyclone
p = 0.02, 0.04
chunk_shots = 50
chunks_per_wave = 2
max_shots = 200
bp = minsum
)";
    ScratchDir scratch("spool-once");
    CampaignSpec spec = parseCampaignSpec(spec_text);
    spec.spool = scratch.path;

    const std::vector<pid_t> pids = forkWorkers(scratch.path, 2);
    CampaignResult dist;
    try {
        dist = runDistributedCampaign(spec, spec_text);
    } catch (...) {
        for (const pid_t pid : pids)
            ::waitpid(pid, nullptr, 0);
        throw;
    }
    reapWorkers(pids);
    for (const TaskResult& t : dist.tasks)
        ASSERT_TRUE(t.error.empty()) << t.error;

    // Sum builder runs (misses not satisfied by the store) across
    // every process's stats file: the whole fleet must have compiled
    // exactly one architecture and built exactly two DEMs.
    size_t compileBuilds = 0;
    size_t demBuilds = 0;
    size_t statsFiles = 0;
    {
        std::string cmd =
            "ls '" + scratch.path + "' | grep '^stats-'";
        FILE* pipe = ::popen(cmd.c_str(), "r");
        ASSERT_NE(pipe, nullptr);
        char name[256];
        while (std::fgets(name, sizeof name, pipe) != nullptr) {
            std::string file(name);
            while (!file.empty() &&
                   (file.back() == '\n' || file.back() == '\r'))
                file.pop_back();
            const WorkerReport r = parseWorkerStats(
                spoolReadFile(scratch.path + "/" + file));
            compileBuilds +=
                r.cache.compileMisses - r.cache.compileStoreHits;
            demBuilds += r.cache.demMisses - r.cache.demStoreHits;
            ++statsFiles;
        }
        ::pclose(pipe);
    }
    EXPECT_EQ(statsFiles, 3u) << "coordinator + two workers";
    EXPECT_EQ(compileBuilds, 1u)
        << "one distinct architecture compile fleet-wide";
    EXPECT_EQ(demBuilds, 2u) << "one DEM per p fleet-wide";
    EXPECT_EQ(dist.cache.compileMisses, 1u);
    EXPECT_EQ(dist.cache.compileStoreHits, 0u);
    EXPECT_GT(dist.cache.compileBytes, 0u);
    EXPECT_GT(dist.cache.demBytes, 0u);
}

TEST(DistributedCampaign, SpoolResumeReusesRecords)
{
    // Run a campaign to completion, wipe the DONE marker AND the
    // merge journal, and rerun the coordinator with no workers:
    // every shard it republishes is already satisfied by a record,
    // so it must finish alone and report the reuse.
    ScratchDir scratch("spool-resume");
    const CampaignResult first = runDistributed(scratch.path, 2);

    std::string cmd = "rm -f '" + scratch.path + "/DONE' '" +
        scratch.path + "/journal.txt'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
    spec.spool = scratch.path;
    const CampaignResult second =
        runDistributedCampaign(spec, kSpoolSpec);
    expectTasksIdentical(first, second);
    EXPECT_EQ(second.spool.shardsPublished, 0u);
    EXPECT_EQ(second.spool.recordsReused, second.spool.shardsMerged);
    EXPECT_EQ(second.spool.journalRestores, 0u);

    // With the journal intact, a rerun restores every finalized task
    // directly from it without touching a single record.
    cmd = "rm -f '" + scratch.path + "/DONE'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    const CampaignResult third =
        runDistributedCampaign(spec, kSpoolSpec);
    expectTasksIdentical(first, third);
    EXPECT_EQ(third.spool.journalRestores, first.tasks.size());
    EXPECT_EQ(third.spool.shardsMerged, 0u);
    EXPECT_EQ(third.spool.shardsPublished, 0u);
}

TEST(DistributedCampaign, StreamingTasksAreRejectedUpFront)
{
    // The streaming decode service is in-process only for now: the
    // coordinator must refuse a streaming spec with a clear error
    // before creating any spool state, not silently drop the
    // telemetry.
    ScratchDir scratch("spool-streaming-reject");
    CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
    spec.spool = scratch.path;
    spec.tasks[0].stream.enabled = true;
    spec.tasks[0].id = "served";
    try {
        runDistributedCampaign(spec, kSpoolSpec);
        FAIL() << "expected streaming rejection";
    } catch (const std::invalid_argument& ex) {
        const std::string what = ex.what();
        EXPECT_NE(what.find("streaming"), std::string::npos) << what;
        EXPECT_NE(what.find("in-process"), std::string::npos) << what;
        EXPECT_NE(what.find("served"), std::string::npos) << what;
    }
}

TEST(DistributedCampaign, PoisonShardQuarantinedAndSurfaced)
{
    // One task, zero reclaim tolerance, one worker that dies holding
    // its claim: the first lease expiry must quarantine the shard as
    // poison and finalize the task with an error instead of
    // republishing it forever.
    const char* spec_text = R"(name = spool-poison
seed = 5

[task]
id = poison
code = surface3
arch = none
p = 0.05
chunk_shots = 50
chunks_per_wave = 4
max_shots = 400
bp = minsum
)";
    ScratchDir scratch("spool-poison");
    CampaignSpec spec = parseCampaignSpec(spec_text);
    spec.spool = scratch.path;
    spec.leaseSeconds = 0.3;
    spec.maxClaimReclaims = 0;

    const std::vector<pid_t> dying =
        forkWorkers(scratch.path, 1, 0.0, /*dieAfterClaim=*/true);
    CampaignResult dist;
    try {
        dist = runDistributedCampaign(spec, spec_text);
    } catch (...) {
        for (const pid_t pid : dying)
            ::waitpid(pid, nullptr, 0);
        throw;
    }
    reapWorkers(dying);

    EXPECT_EQ(dist.spool.shardsPoisoned, 1u);
    ASSERT_EQ(dist.tasks.size(), 1u);
    EXPECT_NE(dist.tasks[0].error.find("poison shard"),
              std::string::npos)
        << dist.tasks[0].error;

    Spool spool(scratch.path);
    EXPECT_TRUE(spool.done());
    EXPECT_FALSE(spool.quarantined().empty());
}

TEST(DistributedCampaign, IdleWorkerPromotesOverDeadCoordinator)
{
    // The coordinator crashes at its first record merge (injected
    // fault, installed only in the forked coordinator child). The
    // lone promote-enabled worker drains the published wave, finds
    // nothing left to claim, watches the coordinator lease go stale,
    // promotes itself, and finishes the campaign — bit-identically.
    CampaignSpec reference_spec = parseCampaignSpec(kSpoolSpec);
    reference_spec.threads = 2;
    const CampaignResult reference = runCampaign(reference_spec);

    ScratchDir scratch("spool-promote");
    const pid_t coord = ::fork();
    if (coord == 0) {
        installFaultPlan(
            FaultPlan::parse("coord.record.merged:crash_before@1"));
        CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
        spec.spool = scratch.path;
        spec.leaseSeconds = 0.4;
        int rc = 0;
        try {
            runDistributedCampaign(spec, kSpoolSpec);
        } catch (...) {
            rc = 3;
        }
        ::_exit(rc);
    }
    ASSERT_GT(coord, 0);

    const pid_t worker = ::fork();
    if (worker == 0) {
        WorkerOptions opts;
        opts.spool = scratch.path;
        opts.threads = 2;
        opts.workerId = "promoter";
        opts.pollSeconds = 0.01;
        opts.promote = true;
        int rc = 0;
        try {
            runSpoolWorker(opts);
        } catch (...) {
            rc = 1;
        }
        ::_exit(rc);
    }
    ASSERT_GT(worker, 0);

    int status = 0;
    ASSERT_EQ(::waitpid(coord, &status, 0), coord);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), kFaultCrashExitCode)
        << "the coordinator must die at the injected fault";
    ASSERT_EQ(::waitpid(worker, &status, 0), worker);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    Spool spool(scratch.path);
    EXPECT_TRUE(spool.done())
        << "the promoted worker must have finished the campaign";
    const WorkerReport stats =
        parseWorkerStats(spool.readFile("stats-promoter.txt"));
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_TRUE(spool.exists("result.json"));

    // A post-hoc takeover of the finished spool restores everything
    // from the promoted worker's journal, bit-identically.
    CampaignSpec spec = parseCampaignSpec(kSpoolSpec);
    spec.spool = scratch.path;
    std::string cmd = "rm -f '" + scratch.path + "/DONE'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    const CampaignResult merged =
        runDistributedCampaign(spec, kSpoolSpec);
    expectTasksIdentical(reference, merged);
    EXPECT_EQ(merged.spool.journalRestores, reference.tasks.size());
}

} // namespace
} // namespace cyclone
