/**
 * @file
 * Tests for shuttling route planning and roadblock accounting.
 */

#include <gtest/gtest.h>

#include "compiler/router.h"
#include "qccd/topology_builders.h"

namespace cyclone {
namespace {

struct RingFixture
{
    RingFixture()
        : topo(buildRing(6, 4)), machine(topo),
          swap(SwapKind::GateSwap, dur), router(topo, dur, swap),
          timeline(router.numResources())
    {}

    Topology topo;
    Machine machine;
    Durations dur;
    SwapModel swap;
    Router router;
    ResourceTimeline timeline;
};

TEST(Router, SameTrapIsFree)
{
    RingFixture f;
    NodeId t0 = f.topo.traps()[0];
    IonId ion = f.machine.addAncillaIon(0, t0);
    auto plan = f.router.planMove(f.timeline, f.machine, ion, t0, 3.0);
    EXPECT_DOUBLE_EQ(plan.readyTime, 3.0);
    EXPECT_TRUE(plan.reservations.empty());
    EXPECT_EQ(plan.shuttleOps, 0u);
}

TEST(Router, AdjacentHopCost)
{
    RingFixture f;
    NodeId t0 = f.topo.traps()[0];
    NodeId t1 = f.topo.traps()[1];
    IonId ion = f.machine.addAncillaIon(0, t0);
    auto plan = f.router.planMove(f.timeline, f.machine, ion, t1, 0.0);
    // Lone ion at the edge: no swap. split + move + cross(2) + move
    // + merge = 80 + 10 + 10 + 10 + 80 = 190.
    EXPECT_DOUBLE_EQ(plan.readyTime, 190.0);
    EXPECT_EQ(plan.swapOps, 0u);
    EXPECT_EQ(plan.trapRoadblocks, 0u);
    EXPECT_DOUBLE_EQ(plan.breakdown.shuttleUs, 180.0);
    EXPECT_DOUBLE_EQ(plan.breakdown.junctionUs, 10.0);
}

TEST(Router, SwapPaidWhenBuriedInChain)
{
    RingFixture f;
    NodeId t0 = f.topo.traps()[0];
    NodeId t1 = f.topo.traps()[1];
    // Two data ions after the ancilla: the ancilla sits at the front.
    IonId anc = f.machine.addAncillaIon(0, t0);
    f.machine.addDataIon(0, t0);
    f.machine.addDataIon(1, t0);
    auto plan = f.router.planMove(f.timeline, f.machine, anc, t1, 0.0);
    // Whether a swap is needed depends on which port leads to t1;
    // the ancilla is at the front (port 0). Either way the cost
    // matches the swap model.
    const bool exit_front = f.topo.neighbors(t0)[0].node ==
        f.topo.shortestPath(t0, t1)[1];
    if (exit_front) {
        EXPECT_EQ(plan.swapOps, 0u);
    } else {
        EXPECT_EQ(plan.swapOps, 1u);
        EXPECT_GT(plan.breakdown.swapUs, 0.0);
    }
}

TEST(Router, ThroughTrapTransitCountsAndPays)
{
    RingFixture f;
    NodeId t0 = f.topo.traps()[0];
    NodeId t2 = f.topo.traps()[2];
    IonId ion = f.machine.addAncillaIon(0, t0);
    auto plan = f.router.planMove(f.timeline, f.machine, ion, t2, 0.0);
    // Ring: t0 -> j -> t1 -> j -> t2. One through-trap transit.
    EXPECT_EQ(plan.trapTransits, 1u);
    // merge+split at t1 (160) adds to shuttle time.
    EXPECT_DOUBLE_EQ(plan.breakdown.shuttleUs,
                     80 + 10 + 160 + 10 + 10 + 10 + 80);
}

TEST(Router, TrapRoadblockWhenTransitTrapBusy)
{
    RingFixture f;
    NodeId t0 = f.topo.traps()[0];
    NodeId t1 = f.topo.traps()[1];
    NodeId t2 = f.topo.traps()[2];
    IonId ion = f.machine.addAncillaIon(0, t0);
    // Occupy the intermediate trap for a long window.
    f.timeline.reserve(t1, 0.0, 100000.0);
    auto plan = f.router.planMove(f.timeline, f.machine, ion, t2, 0.0);
    EXPECT_EQ(plan.trapRoadblocks, 1u);
    EXPECT_GT(plan.readyTime, 100000.0);
}

TEST(Router, JunctionRoadblockWhenJunctionBusy)
{
    RingFixture f;
    NodeId t0 = f.topo.traps()[0];
    NodeId t1 = f.topo.traps()[1];
    IonId ion = f.machine.addAncillaIon(0, t0);
    const NodeId junction = f.topo.shortestPath(t0, t1)[1];
    ASSERT_FALSE(f.topo.isTrap(junction));
    f.timeline.reserve(junction, 0.0, 5000.0);
    auto plan = f.router.planMove(f.timeline, f.machine, ion, t1, 0.0);
    EXPECT_EQ(plan.junctionRoadblocks, 1u);
    EXPECT_GT(plan.readyTime, 5000.0);
}

TEST(Router, ReservationsCommitCleanly)
{
    RingFixture f;
    NodeId t0 = f.topo.traps()[0];
    NodeId t2 = f.topo.traps()[2];
    IonId ion = f.machine.addAncillaIon(0, t0);
    auto plan = f.router.planMove(f.timeline, f.machine, ion, t2, 0.0);
    for (const Reservation& r : plan.reservations)
        f.timeline.reserve(r.resource, r.start, r.duration);
    EXPECT_GE(f.timeline.makespan(), plan.readyTime - 1e-9);
}

TEST(Router, ConservativeHoldsWholePath)
{
    Topology mesh = buildJunctionMesh(8, 3);
    Machine machine(mesh);
    Durations dur;
    SwapModel swap(SwapKind::GateSwap, dur);
    Router router(mesh, dur, swap);
    ResourceTimeline tl(router.numResources());

    NodeId from = mesh.traps()[0];
    NodeId to = mesh.traps()[4];
    IonId ion = machine.addAncillaIon(0, from);
    auto plan = router.planMove(tl, machine, ion, to, 0.0, true);
    // All traversal reservations share one start window.
    double start = -1.0;
    for (const Reservation& r : plan.reservations) {
        if (r.category == OpCategory::Junction) {
            if (start < 0.0)
                start = r.start;
            EXPECT_DOUBLE_EQ(r.start, start);
        }
    }
    // Committing then replanning an overlapping route must wait.
    for (const Reservation& r : plan.reservations)
        tl.reserve(r.resource, r.start, r.duration);
    Machine machine2(mesh);
    IonId ion2 = machine2.addAncillaIon(1, from);
    auto plan2 = router.planMove(tl, machine2, ion2, to, 0.0, true);
    EXPECT_GT(plan2.junctionRoadblocks, 0u);
    EXPECT_GT(plan2.readyTime, plan.readyTime - 1e-9);
}

} // namespace
} // namespace cyclone
