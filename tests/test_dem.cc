/**
 * @file
 * Tests for detector error model extraction and sampling.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/frame_simulator.h"
#include "circuit/memory_circuit.h"
#include "dem/dem_builder.h"
#include "dem/dem_sampler.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

CssCode
surface13()
{
    return makeHgpCode(ClassicalCode::repetition(3), 3);
}

TEST(DemBuilder, SingleXErrorSingleMechanism)
{
    Circuit c(1);
    c.xError(0, 0.125);
    c.measureZ(0);
    c.addDetector({0});
    auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_DOUBLE_EQ(dem.mechanisms[0].probability, 0.125);
    ASSERT_EQ(dem.mechanisms[0].detectors.size(), 1u);
    EXPECT_EQ(dem.mechanisms[0].detectors[0], 0u);
}

TEST(DemBuilder, IdenticalMechanismsMerge)
{
    // Two X errors at the same spot merge with OR-combined
    // probability p1 (1 - p2) + p2 (1 - p1).
    Circuit c(1);
    c.xError(0, 0.1);
    c.xError(0, 0.2);
    c.measureZ(0);
    c.addDetector({0});
    auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_NEAR(dem.mechanisms[0].probability,
                0.1 * 0.8 + 0.2 * 0.9, 1e-12);
}

TEST(DemBuilder, InvisibleErrorsDropped)
{
    // A Z error before a Z measurement affects nothing.
    Circuit c(1);
    c.zError(0, 0.3);
    c.measureZ(0);
    c.addDetector({0});
    auto dem = buildDetectorErrorModel(c);
    EXPECT_TRUE(dem.mechanisms.empty());
}

TEST(DemBuilder, Depolarize1SplitsIntoVisibleComponents)
{
    // On a Z measurement, X and Y components are visible and have
    // the same signature: they merge. Z is invisible.
    Circuit c(1);
    c.depolarize1(0, 0.3);
    c.measureZ(0);
    c.addDetector({0});
    auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    const double p = 0.1; // each component
    EXPECT_NEAR(dem.mechanisms[0].probability,
                p * (1 - p) + p * (1 - p), 1e-12);
}

TEST(DemBuilder, ObservableTracking)
{
    Circuit c(2);
    c.xError(0, 0.1);
    c.measureZ(0);
    c.measureZ(1);
    c.addDetector({0});
    c.addObservable(2, {0, 1});
    auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_EQ(dem.mechanisms[0].observables, uint64_t(1) << 2);
    EXPECT_EQ(dem.numObservables, 3u);
}

TEST(DemBuilder, MechanismSignaturesMatchFramePropagation)
{
    // Cross-validation: every XError/ZError mechanism's detector set
    // must equal what single-fault frame propagation reports.
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    // Probe circuit with preparation errors only: every noise site is
    // a single X or Z flip whose signature we can check one by one.
    MemoryCircuitOptions probe_opts;
    probe_opts.rounds = 2;
    probe_opts.noise = NoiseModel::uniform(0.0);
    probe_opts.noise.prepError = 0.01;
    Circuit probe = buildZMemoryCircuit(code, sched, probe_opts);

    auto dem = buildDetectorErrorModel(probe);
    FrameSimulator sim(probe);
    // Every prep-error op: propagate its fault and find the matching
    // mechanism (or confirm it is invisible).
    size_t checked = 0;
    for (size_t i = 0; i < probe.ops().size(); ++i) {
        const Op& op = probe.ops()[i];
        if (op.kind != OpKind::XError && op.kind != OpKind::ZError)
            continue;
        BitVec flips;
        uint64_t obs = 0;
        sim.propagateFault(i, op.targets[0],
                           op.kind == OpKind::XError,
                           op.kind == OpKind::ZError, flips, obs);
        const auto positions = flips.onesPositions();
        std::vector<uint32_t> dets(positions.begin(), positions.end());
        if (dets.empty() && obs == 0)
            continue; // invisible fault
        bool found = false;
        for (const DemMechanism& m : dem.mechanisms) {
            if (m.observables == obs && m.detectors == dets) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "op " << i << " signature missing";
        ++checked;
    }
    EXPECT_GT(checked, 10u);
}

TEST(DemBuilder, ExpectedErrorsMatchesProbabilitySum)
{
    Circuit c(2);
    c.xError(0, 0.1);
    c.zError(1, 0.0); // skipped
    c.measureZ(0);
    c.measureZ(1);
    c.addDetector({0});
    c.addDetector({1});
    auto dem = buildDetectorErrorModel(c);
    EXPECT_NEAR(dem.expectedErrorsPerShot(), 0.1, 1e-12);
}

TEST(DemBuilder, Deterministic)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 2;
    opts.noise = NoiseModel::uniform(0.01);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    auto a = buildDetectorErrorModel(circuit);
    auto b = buildDetectorErrorModel(circuit);
    ASSERT_EQ(a.mechanisms.size(), b.mechanisms.size());
    EXPECT_NEAR(a.expectedErrorsPerShot(), b.expectedErrorsPerShot(),
                1e-12);
    for (size_t i = 0; i < a.mechanisms.size(); ++i) {
        EXPECT_EQ(a.mechanisms[i].detectors,
                  b.mechanisms[i].detectors);
        EXPECT_EQ(a.mechanisms[i].observables,
                  b.mechanisms[i].observables);
    }
}

TEST(DemBuilder, LatencyChannelAddsMechanisms)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions quiet;
    quiet.rounds = 2;
    quiet.noise = NoiseModel::uniform(0.01);
    MemoryCircuitOptions slow = quiet;
    slow.noise = NoiseModel::withLatency(0.01, 200000.0);
    auto dem_quiet =
        buildDetectorErrorModel(buildZMemoryCircuit(code, sched, quiet));
    auto dem_slow =
        buildDetectorErrorModel(buildZMemoryCircuit(code, sched, slow));
    EXPECT_GT(dem_slow.expectedErrorsPerShot(),
              dem_quiet.expectedErrorsPerShot());
}

TEST(DemSampler, ZeroProbabilityNeverFires)
{
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.mechanisms.push_back({0.0, {0}, 0});
    Rng rng(3);
    auto shots = sampleDem(dem, 100, rng);
    for (const BitVec& s : shots.syndromes)
        EXPECT_TRUE(s.isZero());
}

TEST(DemSampler, CertainMechanismAlwaysFires)
{
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.mechanisms.push_back({1.0, {1}, 1});
    Rng rng(3);
    auto shots = sampleDem(dem, 50, rng);
    for (size_t i = 0; i < 50; ++i) {
        EXPECT_TRUE(shots.syndromes[i].get(1));
        EXPECT_EQ(shots.observables[i], 1u);
    }
}

TEST(DemSampler, FiringRateMatchesProbability)
{
    DetectorErrorModel dem;
    dem.numDetectors = 1;
    dem.mechanisms.push_back({0.3, {0}, 0});
    Rng rng(5);
    const size_t shots = 20000;
    auto s = sampleDem(dem, shots, rng);
    size_t fired = 0;
    for (const BitVec& v : s.syndromes)
        fired += v.get(0);
    EXPECT_NEAR(static_cast<double>(fired) / shots, 0.3, 0.02);
}

TEST(DemSampler, MarginalsMatchFrameSimulator)
{
    // End-to-end: per-detector flip rates from the DEM sampler track
    // the frame simulator on the same noisy circuit.
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 2;
    opts.noise = NoiseModel::uniform(0.01);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);

    const size_t shots = 4000;
    Rng rng_frame(7), rng_dem(9);
    FrameSimulator sim(circuit);
    auto frame_samples = sim.sample(shots, rng_frame);
    auto dem = buildDetectorErrorModel(circuit);
    auto dem_samples = sampleDem(dem, shots, rng_dem);

    double total_frame = 0.0, total_dem = 0.0;
    for (size_t s = 0; s < shots; ++s) {
        total_frame += frame_samples.detectors[s].popcount();
        total_dem += dem_samples.syndromes[s].popcount();
    }
    const double mean_frame = total_frame / shots;
    const double mean_dem = total_dem / shots;
    // Independent-mechanism decomposition differs from exact channel
    // sampling at O(p^2); allow 10% plus statistical slack.
    EXPECT_NEAR(mean_dem, mean_frame,
                0.1 * mean_frame + 0.3);
}

} // namespace
} // namespace cyclone
