/**
 * @file
 * Tests for the Section IV-C loop-cut analysis: HGP and BB codes do
 * not permit independent loops, while disjoint block codes do.
 */

#include <gtest/gtest.h>

#include "core/loops.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"

namespace cyclone {
namespace {

/** Block-diagonal union of two copies of a code (disjoint blocks). */
CssCode
doubleCode(const CssCode& base)
{
    const size_t n = base.numQubits();
    SparseGF2 hx(2 * base.numXStabs(), 2 * n);
    SparseGF2 hz(2 * base.numZStabs(), 2 * n);
    for (size_t r = 0; r < base.numXStabs(); ++r) {
        hx.setRowSupport(r, base.hx().rowSupport(r));
        std::vector<size_t> shifted;
        for (size_t q : base.hx().rowSupport(r))
            shifted.push_back(q + n);
        hx.setRowSupport(base.numXStabs() + r, shifted);
    }
    for (size_t r = 0; r < base.numZStabs(); ++r) {
        hz.setRowSupport(r, base.hz().rowSupport(r));
        std::vector<size_t> shifted;
        for (size_t q : base.hz().rowSupport(r))
            shifted.push_back(q + n);
        hz.setRowSupport(base.numZStabs() + r, shifted);
    }
    return CssCode(hx, hz, "double(" + base.name() + ")",
                   base.nominalDistance());
}

TEST(LoopCut, PartitionIsCompleteAndBalanced)
{
    CssCode code = catalog::bb72();
    LoopCutAnalysis cut = analyzeLoopCut(code);
    EXPECT_EQ(cut.loopA.size() + cut.loopB.size(), code.numStabs());
    // Balance within the greedy tolerance.
    const size_t diff = cut.loopA.size() > cut.loopB.size()
        ? cut.loopA.size() - cut.loopB.size()
        : cut.loopB.size() - cut.loopA.size();
    EXPECT_LE(diff, code.numStabs() / 4);
    EXPECT_EQ(cut.dataInA + cut.dataInB, code.numQubits());
}

class LoopCutOnCodes : public ::testing::TestWithParam<std::string>
{};

TEST_P(LoopCutOnCodes, NonTopologicalCodesDoNotCut)
{
    // Section IV-C: "neither HGP nor BB codes permit such cuts due to
    // their long-range and non-local connections."
    CssCode code = catalog::byName(GetParam());
    LoopCutAnalysis cut = analyzeLoopCut(code);
    EXPECT_GT(cut.crossingFraction, 0.2)
        << code.name() << " unexpectedly separable";
}

TEST_P(LoopCutOnCodes, TwoLoopSplitLoses)
{
    CssCode code = catalog::byName(GetParam());
    TwoLoopEstimate est = estimateTwoLoopCyclone(code);
    EXPECT_GT(est.twoLoopUs, est.singleLoopUs)
        << "two-loop split should not pay off for " << code.name();
}

INSTANTIATE_TEST_SUITE_P(Catalog, LoopCutOnCodes,
                         ::testing::Values("hgp225", "bb72", "bb90",
                                           "bb108", "bb144"));

TEST(LoopCut, DisjointBlocksCutCleanly)
{
    CssCode base = makeHgpCode(ClassicalCode::repetition(3), 3);
    CssCode blocks = doubleCode(base);
    LoopCutAnalysis cut = analyzeLoopCut(blocks);
    EXPECT_EQ(cut.crossingStabs, 0u);
    EXPECT_DOUBLE_EQ(cut.crossingFraction, 0.0);

    TwoLoopEstimate est = estimateTwoLoopCyclone(blocks);
    EXPECT_LT(est.twoLoopUs, est.singleLoopUs);
}

TEST(LoopCut, DisjointPartitionSeparatesBlocks)
{
    CssCode base = makeHgpCode(ClassicalCode::repetition(3), 3);
    CssCode blocks = doubleCode(base);
    LoopCutAnalysis cut = analyzeLoopCut(blocks);
    // Every stabilizer of one block must land in one loop.
    const size_t per_block = base.numStabs();
    auto block_of = [&](size_t global) {
        // X stabs [0, mx) block 0, [mx, 2mx) block 1, then Z likewise.
        const size_t mx2 = 2 * base.numXStabs();
        if (global < mx2)
            return global < base.numXStabs() ? 0 : 1;
        return (global - mx2) < base.numZStabs() ? 0 : 1;
    };
    (void)per_block;
    for (auto* loop : {&cut.loopA, &cut.loopB}) {
        if (loop->empty())
            continue;
        const int first = block_of((*loop)[0]);
        for (size_t g : *loop)
            EXPECT_EQ(block_of(g), first);
    }
}

} // namespace
} // namespace cyclone
