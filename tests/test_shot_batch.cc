/**
 * @file
 * Tests for the packed shot pipeline: the 64x64 transpose, the
 * detector-major ShotBatch, the packed sampler, and batch-vs-scalar
 * decode equivalence (the determinism contract of the batched
 * pipeline).
 */

#include <gtest/gtest.h>

#include "campaign/adaptive_sampler.h"
#include "circuit/memory_circuit.h"
#include "common/bit_transpose.h"
#include "common/rng.h"
#include "decoder/bposd_decoder.h"
#include "decoder/exhaustive_decoder.h"
#include "dem/dem_builder.h"
#include "dem/dem_sampler.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

/** Hand-built repetition-code DEM: chain of detectors. */
DetectorErrorModel
repetitionDem(size_t n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n - 1;
    dem.numObservables = 1;
    for (size_t i = 0; i < n; ++i) {
        DemMechanism m;
        m.probability = p;
        if (i > 0)
            m.detectors.push_back(static_cast<uint32_t>(i - 1));
        if (i < n - 1)
            m.detectors.push_back(static_cast<uint32_t>(i));
        m.observables = i == n - 1 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    return dem;
}

DetectorErrorModel
surface13Dem(double p, size_t rounds = 2)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = rounds;
    opts.noise = NoiseModel::uniform(p);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    return buildDetectorErrorModel(circuit);
}

TEST(BitTranspose, SingleBitsLandTransposed)
{
    Rng rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        uint64_t block[64] = {};
        const size_t r = rng.below(64);
        const size_t c = rng.below(64);
        block[r] = uint64_t(1) << c;
        transpose64x64(block);
        for (size_t i = 0; i < 64; ++i) {
            const uint64_t expect =
                i == c ? uint64_t(1) << r : 0;
            ASSERT_EQ(block[i], expect)
                << "r=" << r << " c=" << c << " row " << i;
        }
    }
}

TEST(BitTranspose, RandomRoundtrip)
{
    Rng rng(11);
    uint64_t block[64];
    uint64_t original[64];
    for (size_t i = 0; i < 64; ++i)
        original[i] = block[i] = rng.next();
    transpose64x64(block);
    transpose64x64(block);
    for (size_t i = 0; i < 64; ++i)
        EXPECT_EQ(block[i], original[i]);
}

TEST(BitTranspose, WaveTransposePadsShortTiles)
{
    // 70 rows x 64 columns, strided input, 2-word output rows.
    const size_t rows = 70, stride = 3, out_words = 2;
    std::vector<uint64_t> input(rows * stride, 0);
    Rng rng(13);
    for (size_t r = 0; r < rows; ++r)
        input[r * stride] = rng.next();
    std::vector<uint64_t> out(64 * out_words, ~uint64_t(0));
    transposeWave64(input.data(), rows, stride, out.data(), out_words);
    for (size_t c = 0; c < 64; ++c) {
        for (size_t r = 0; r < rows; ++r) {
            const bool in_bit = (input[r * stride] >> c) & 1;
            const bool out_bit =
                (out[c * out_words + (r >> 6)] >> (r & 63)) & 1;
            ASSERT_EQ(in_bit, out_bit) << "r=" << r << " c=" << c;
        }
        // Padding rows must come out zero (BitVec tail invariant).
        for (size_t r = rows; r < 128; ++r) {
            ASSERT_FALSE((out[c * out_words + (r >> 6)] >> (r & 63)) &
                         1);
        }
    }
}

TEST(ShotBatch, LayoutAndMasks)
{
    ShotBatch batch;
    batch.reset(5, 130); // 3 waves, last has 2 shots
    EXPECT_EQ(batch.numWaves(), 3u);
    EXPECT_EQ(batch.wordsPerDetector(), 3u);
    EXPECT_EQ(batch.waveMask(0), ~uint64_t(0));
    EXPECT_EQ(batch.waveMask(2), 0x3ull);
    EXPECT_EQ(batch.activeMask(0), 0ull);

    batch.flipDetector(129, 4);
    batch.flipDetector(1, 0);
    EXPECT_TRUE(batch.detector(129, 4));
    EXPECT_FALSE(batch.detector(128, 4));
    EXPECT_EQ(batch.activeMask(2), 0x2ull);
    EXPECT_EQ(batch.activeMask(0), 0x2ull);

    const BitVec syndrome = batch.syndromeOf(129);
    EXPECT_EQ(syndrome.size(), 5u);
    EXPECT_TRUE(syndrome.get(4));
    EXPECT_EQ(syndrome.popcount(), 1u);

    // reset() zeroes contents while reusing storage.
    batch.reset(5, 130);
    EXPECT_EQ(batch.activeMask(0), 0ull);
    EXPECT_EQ(batch.activeMask(2), 0ull);
}

TEST(ShotBatch, PackedSamplerMatchesScalarSampler)
{
    const auto dem = surface13Dem(0.01);
    for (size_t shots : {1u, 63u, 64u, 65u, 130u, 256u}) {
        Rng scalar_rng(0x5eed);
        Rng batch_rng(0x5eed);
        const DemShots scalar = sampleDem(dem, shots, scalar_rng);
        ShotBatch batch;
        sampleDemBatch(dem, shots, batch_rng, batch);

        ASSERT_EQ(batch.numShots, shots);
        ASSERT_EQ(batch.numDetectors, dem.numDetectors);
        for (size_t s = 0; s < shots; ++s) {
            ASSERT_EQ(batch.observables[s], scalar.observables[s])
                << "shots=" << shots << " s=" << s;
            ASSERT_EQ(batch.syndromeOf(s), scalar.syndromes[s])
                << "shots=" << shots << " s=" << s;
        }
        // Packed bits past numShots must stay zero.
        if (shots & 63) {
            const size_t last = batch.numWaves() - 1;
            EXPECT_EQ(batch.activeMask(last) & ~batch.waveMask(last),
                      0ull);
        }
    }
}

/** Decode every scalar-sampled shot with a fresh decoder. */
std::vector<uint64_t>
scalarPredictions(const DetectorErrorModel& dem, const DemShots& shots,
                  const BpOptions& bp, BpOsdStats* stats_out = nullptr)
{
    BpOsdDecoder decoder(dem, bp);
    std::vector<uint64_t> out;
    out.reserve(shots.syndromes.size());
    for (const BitVec& syndrome : shots.syndromes)
        out.push_back(decoder.decode(syndrome));
    if (stats_out != nullptr)
        *stats_out = decoder.stats();
    return out;
}

TEST(DecodeBatch, MatchesScalarForBothBpVariants)
{
    const auto dem = surface13Dem(0.008);
    for (const auto variant : {BpOptions::Variant::MinSum,
                               BpOptions::Variant::ProductSum}) {
        BpOptions bp;
        bp.variant = variant;
        for (size_t shots : {1u, 64u, 100u, 200u}) {
            Rng scalar_rng(99);
            Rng batch_rng(99);
            DemShots scalar_shots;
            sampleDemInto(dem, shots, scalar_rng, scalar_shots);
            ShotBatch batch;
            sampleDemBatch(dem, shots, batch_rng, batch);

            BpOsdStats scalar_stats;
            const std::vector<uint64_t> expected = scalarPredictions(
                dem, scalar_shots, bp, &scalar_stats);

            BpOsdDecoder decoder(dem, bp);
            std::vector<uint64_t> got;
            decoder.decodeBatch(batch, got);
            ASSERT_EQ(got.size(), shots);
            for (size_t s = 0; s < shots; ++s)
                ASSERT_EQ(got[s], expected[s])
                    << "variant="
                    << (variant == BpOptions::Variant::MinSum ? "ms"
                                                              : "ps")
                    << " shots=" << shots << " s=" << s;

            // Memo replays re-apply outcome stats, so every counter
            // except memoHits matches the per-shot path exactly.
            const BpOsdStats& batch_stats = decoder.stats();
            EXPECT_EQ(batch_stats.decodes, scalar_stats.decodes);
            EXPECT_EQ(batch_stats.bpConverged,
                      scalar_stats.bpConverged);
            EXPECT_EQ(batch_stats.osdInvocations,
                      scalar_stats.osdInvocations);
            EXPECT_EQ(batch_stats.osdFailures,
                      scalar_stats.osdFailures);
            EXPECT_EQ(batch_stats.trivialShots,
                      scalar_stats.trivialShots);
            EXPECT_EQ(batch_stats.bpIterations,
                      scalar_stats.bpIterations);
            EXPECT_EQ(scalar_stats.memoHits, 0u);
        }
    }
}

TEST(DecodeBatch, MemoDecodesEachDistinctSyndromeOnce)
{
    // Tiny DEM at high p: only 16 possible syndromes, so a 512-shot
    // batch is mostly duplicates.
    const auto dem = repetitionDem(5, 0.2);
    const size_t shots = 512;
    Rng scalar_rng(3);
    Rng batch_rng(3);
    DemShots scalar_shots;
    sampleDemInto(dem, shots, scalar_rng, scalar_shots);
    ShotBatch batch;
    sampleDemBatch(dem, shots, batch_rng, batch);

    const std::vector<uint64_t> expected =
        scalarPredictions(dem, scalar_shots, BpOptions{});

    BpOsdDecoder decoder(dem);
    std::vector<uint64_t> got;
    decoder.decodeBatch(batch, got);
    for (size_t s = 0; s < shots; ++s)
        ASSERT_EQ(got[s], expected[s]) << "s=" << s;

    const BpOsdStats& stats = decoder.stats();
    EXPECT_EQ(stats.decodes, shots);
    EXPECT_GT(stats.memoHits, shots / 2);
    EXPECT_GT(stats.trivialShots, 0u);
    EXPECT_GT(stats.memoHitRate(), 0.5);
    EXPECT_GT(stats.trivialFraction(), 0.0);

    // A second batch re-seeds the memo (per-chunk scope): replaying
    // the same batch gives the same counts again, not all-hits.
    BpOsdDecoder fresh(dem);
    std::vector<uint64_t> again;
    fresh.decodeBatch(batch, again);
    EXPECT_EQ(fresh.stats().memoHits, stats.memoHits);
}

TEST(DecodeBatch, MemoHitsReplayOsdStatsExactly)
{
    // Regression for the OSD accounting on the memo-replay path:
    // duplicate syndromes must replay osdInvocations AND osdFailures
    // per shot, not once per distinct syndrome. Starving BP forces
    // OSD on every non-trivial shot, the tiny syndrome space forces
    // duplicates, and an untouched detector row makes some syndromes
    // leave the column span so osdFailures is exercised too.
    DetectorErrorModel dem = repetitionDem(5, 0.2);
    ++dem.numDetectors; // detector 4: touched by no mechanism

    BpOptions bp;
    bp.maxIterations = 1;
    const size_t shots = 256;
    Rng rng(41);
    ShotBatch batch;
    batch.reset(dem.numDetectors, shots);
    for (size_t s = 0; s < shots; ++s) {
        for (size_t d = 0; d + 1 < dem.numDetectors; ++d) {
            if (rng.below(3) == 0)
                batch.flipDetector(s, d);
        }
        if (rng.below(4) == 0)
            batch.flipDetector(s, dem.numDetectors - 1); // out of span
    }

    BpOptions scalarBp = bp;
    scalarBp.waveLanes = 1;
    BpOsdDecoder scalar(dem, scalarBp);
    std::vector<uint64_t> expected(shots);
    for (size_t s = 0; s < shots; ++s)
        expected[s] = scalar.decode(batch.syndromeOf(s));
    const BpOsdStats& want = scalar.stats();
    ASSERT_GT(want.osdInvocations, 0u);
    ASSERT_GT(want.osdFailures, 0u);

    for (const bool osdBatchEnabled : {false, true}) {
        BpOptions batchBp = bp;
        batchBp.osdBatch = osdBatchEnabled;
        BpOsdDecoder decoder(dem, batchBp);
        std::vector<uint64_t> got;
        decoder.decodeBatch(batch, got);
        for (size_t s = 0; s < shots; ++s)
            ASSERT_EQ(got[s], expected[s])
                << "osdBatch=" << osdBatchEnabled << " s=" << s;

        const BpOsdStats& stats = decoder.stats();
        ASSERT_GT(stats.memoHits, 0u) << "osdBatch=" << osdBatchEnabled;
        EXPECT_EQ(stats.decodes, want.decodes);
        EXPECT_EQ(stats.bpConverged, want.bpConverged);
        EXPECT_EQ(stats.osdInvocations, want.osdInvocations)
            << "osdBatch=" << osdBatchEnabled;
        EXPECT_EQ(stats.osdFailures, want.osdFailures)
            << "osdBatch=" << osdBatchEnabled;
        EXPECT_EQ(stats.trivialShots, want.trivialShots);
        EXPECT_EQ(stats.bpIterations, want.bpIterations);
    }
}

TEST(DecodeBatch, ZeroDetectorDemDecodesToZero)
{
    // Mechanisms that flip observables but no detectors: undetectable
    // by construction, every syndrome is the (empty) zero syndrome.
    DetectorErrorModel dem;
    dem.numDetectors = 0;
    dem.numObservables = 1;
    dem.mechanisms.push_back({0.3, {}, 1});
    dem.mechanisms.push_back({0.1, {}, 1});

    const size_t shots = 100;
    Rng rng(17);
    ShotBatch batch;
    sampleDemBatch(dem, shots, rng, batch);

    BpOsdDecoder decoder(dem);
    std::vector<uint64_t> got;
    decoder.decodeBatch(batch, got);
    ASSERT_EQ(got.size(), shots);
    for (uint64_t prediction : got)
        EXPECT_EQ(prediction, 0u);
    EXPECT_EQ(decoder.stats().trivialShots, shots);
    EXPECT_EQ(decoder.stats().decodes, shots);
    EXPECT_DOUBLE_EQ(decoder.stats().trivialFraction(), 1.0);
    EXPECT_DOUBLE_EQ(decoder.stats().meanBpIterations(), 0.0);

    // Scalar path agrees on the empty syndrome.
    BpOsdDecoder scalar(dem);
    EXPECT_EQ(scalar.decode(BitVec(0)), 0u);
}

TEST(DecodeBatch, DefaultImplementationCoversSimpleDecoders)
{
    // ExhaustiveDecoder does not override decodeBatch: the base-class
    // fallback must unpack and agree with per-shot decoding.
    const auto dem = repetitionDem(6, 0.1);
    const size_t shots = 90;
    Rng scalar_rng(29);
    Rng batch_rng(29);
    const DemShots scalar_shots = sampleDem(dem, shots, scalar_rng);
    ShotBatch batch;
    sampleDemBatch(dem, shots, batch_rng, batch);

    ExhaustiveDecoder oracle(dem, 3);
    std::vector<uint64_t> got;
    oracle.decodeBatch(batch, got);
    ExhaustiveDecoder scalar(dem, 3);
    ASSERT_EQ(got.size(), shots);
    for (size_t s = 0; s < shots; ++s)
        ASSERT_EQ(got[s], scalar.decode(scalar_shots.syndromes[s]));
}

TEST(DecodeBatch, RunChunkMatchesHandRolledScalarChunk)
{
    // The campaign's chunk executor end-to-end: packed sample +
    // batched decode must reproduce the scalar pipeline's failure
    // count for the same chunk seed.
    const auto dem = surface13Dem(0.02);
    ChunkPlan plan;
    plan.index = 4;
    plan.shots = 150; // not a multiple of 64
    plan.seed = chunkSeed(0xfeedULL, plan.index);

    Rng rng(plan.seed);
    DemShots scalar_shots;
    sampleDemInto(dem, plan.shots, rng, scalar_shots);
    BpOsdDecoder scalar_decoder(dem);
    size_t scalar_failures = 0;
    for (size_t s = 0; s < plan.shots; ++s) {
        if (scalar_decoder.decode(scalar_shots.syndromes[s]) !=
            scalar_shots.observables[s])
            ++scalar_failures;
    }

    BpOsdDecoder decoder(dem);
    ShotBatch batch;
    std::vector<uint64_t> predicted;
    const ChunkOutcome outcome =
        runChunk(dem, plan, decoder, batch, predicted);
    EXPECT_EQ(outcome.shots, plan.shots);
    EXPECT_EQ(outcome.failures, scalar_failures);
    EXPECT_EQ(decoder.stats().decodes, plan.shots);
}

} // namespace
} // namespace cyclone
