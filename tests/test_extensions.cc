/**
 * @file
 * Tests for the paper's variant features: the grid-embedded Cyclone
 * of Fig. 11b and the X-basis memory experiment.
 */

#include <gtest/gtest.h>

#include "circuit/frame_simulator.h"
#include "circuit/memory_circuit.h"
#include "core/codesign.h"
#include "memory/memory_experiment.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

TEST(CycloneOnGrid, SlowerThanRingButStillBeatsBaseline)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);

    CycloneOptions ring;
    CycloneOptions grid;
    grid.gridEmbedded = true;
    CycloneCompileResult on_ring = compileCyclone(code, ring);
    CycloneCompileResult on_grid = compileCyclone(code, grid);

    EXPECT_GT(on_grid.execTimeUs, on_ring.execTimeUs);
    EXPECT_EQ(on_grid.compilerName, "cyclone-on-grid");
    EXPECT_GT(on_grid.numJunctions, on_ring.numJunctions);
    // Still roadblock free and still faster than the baseline grid.
    EXPECT_EQ(on_grid.trapRoadblocks, 0u);
    CodesignConfig cfg;
    cfg.architecture = Architecture::BaselineGrid;
    CompileResult baseline = compileCodesign(code, sched, cfg);
    EXPECT_LT(on_grid.execTimeUs, baseline.execTimeUs);
}

TEST(CycloneOnGrid, LongLinkPenaltyScalesWithJunctions)
{
    CssCode code = catalog::bb72();
    CycloneOptions few;
    few.gridEmbedded = true;
    few.longLinkJunctions = 2;
    CycloneOptions many = few;
    many.longLinkJunctions = 12;
    EXPECT_LT(compileCyclone(code, few).execTimeUs,
              compileCyclone(code, many).execTimeUs);
}

TEST(XMemory, NoiselessDeterministic)
{
    CssCode code = catalog::bb72();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 3;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit circuit = buildXMemoryCircuit(code, sched, opts);
    FrameSimulator sim(circuit);
    Rng rng(5);
    auto samples = sim.sample(8, rng);
    for (const BitVec& d : samples.detectors)
        EXPECT_TRUE(d.isZero());
    for (uint64_t obs : samples.observables)
        EXPECT_EQ(obs, 0u);
}

TEST(XMemory, DetectorCountsMirrorZMemory)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 4;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit x_mem = buildXMemoryCircuit(code, sched, opts);
    const size_t mx = code.numXStabs();
    const size_t mz = code.numZStabs();
    EXPECT_EQ(x_mem.numDetectors(), mx * (4 + 1) + mz * (4 - 1));
    EXPECT_EQ(x_mem.numObservables(), code.numLogical());
}

TEST(XMemory, ZErrorsCauseLogicalFailures)
{
    // In X memory, logical-Z-type noise (phase flips) is what kills
    // the logical state; a Z-biased channel must raise the X-memory
    // LER above the Z-memory LER under the same bias.
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig cfg;
    cfg.shots = 400;
    cfg.physicalError = 0.02;
    cfg.rounds = 3;
    cfg.seed = 21;
    cfg.xBasis = true;
    auto x_result = runZMemoryExperiment(code, sched, cfg);
    EXPECT_GT(x_result.logicalErrorRate.rate, 0.0);
    EXPECT_EQ(x_result.logicalErrorRate.trials, 400u);
}

TEST(XMemory, MonotoneInPhysicalError)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    double prev = -1.0;
    for (double p : {0.003, 0.03}) {
        MemoryExperimentConfig cfg;
        cfg.shots = 400;
        cfg.physicalError = p;
        cfg.rounds = 3;
        cfg.seed = 23;
        cfg.xBasis = true;
        auto r = runZMemoryExperiment(code, sched, cfg);
        EXPECT_GE(r.logicalErrorRate.rate, prev);
        prev = r.logicalErrorRate.rate;
    }
    EXPECT_GT(prev, 0.0);
}

} // namespace
} // namespace cyclone
