/**
 * @file
 * Tests for the TimedSchedule IR: structural validity of every
 * compiler's emitted timeline, exact agreement between the IR-derived
 * summary and the CompileResult fields, the compiler registry, and
 * TimeBreakdown / architecture-name plumbing.
 */

#include <gtest/gtest.h>

#include <string>

#include "compiler/architecture.h"
#include "compiler/compiler.h"
#include "compiler/ideal.h"
#include "core/codesign.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

TEST(TimeBreakdown, AddRoutesToTheRightBucket)
{
    TimeBreakdown b;
    b.add(OpCategory::Gate, 1.0);
    b.add(OpCategory::Shuttle, 2.0);
    b.add(OpCategory::Junction, 4.0);
    b.add(OpCategory::Swap, 8.0);
    b.add(OpCategory::Measure, 16.0);
    b.add(OpCategory::Prep, 32.0);
    EXPECT_DOUBLE_EQ(b.gateUs, 1.0);
    EXPECT_DOUBLE_EQ(b.shuttleUs, 2.0);
    EXPECT_DOUBLE_EQ(b.junctionUs, 4.0);
    EXPECT_DOUBLE_EQ(b.swapUs, 8.0);
    EXPECT_DOUBLE_EQ(b.measureUs, 16.0);
    EXPECT_DOUBLE_EQ(b.prepUs, 32.0);
    EXPECT_DOUBLE_EQ(b.total(), 63.0);
    for (OpCategory cat :
         {OpCategory::Gate, OpCategory::Shuttle, OpCategory::Junction,
          OpCategory::Swap, OpCategory::Measure, OpCategory::Prep}) {
        b.add(cat, 1.0);
    }
    EXPECT_DOUBLE_EQ(b.total(), 69.0);
    EXPECT_DOUBLE_EQ(b.of(OpCategory::Gate), 2.0);
    EXPECT_DOUBLE_EQ(b.of(OpCategory::Prep), 33.0);
}

TEST(TimeBreakdown, PlusEqualsAccumulatesEveryBucket)
{
    TimeBreakdown a;
    a.add(OpCategory::Gate, 1.5);
    a.add(OpCategory::Measure, 2.5);
    TimeBreakdown b;
    b.add(OpCategory::Gate, 0.5);
    b.add(OpCategory::Swap, 3.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.gateUs, 2.0);
    EXPECT_DOUBLE_EQ(a.swapUs, 3.0);
    EXPECT_DOUBLE_EQ(a.measureUs, 2.5);
    EXPECT_DOUBLE_EQ(a.total(), 7.5);
    // Self-accumulation doubles everything.
    a += a;
    EXPECT_DOUBLE_EQ(a.total(), 15.0);
    // Empty breakdown is the identity.
    TimeBreakdown zero;
    a += zero;
    EXPECT_DOUBLE_EQ(a.total(), 15.0);
}

TEST(Architecture, NameParseRoundTripAllSix)
{
    for (Architecture arch : kAllArchitectures) {
        const char* name = architectureName(arch);
        const auto parsed = parseArchitecture(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, arch) << name;
    }
}

TEST(Architecture, AliasesParse)
{
    EXPECT_EQ(parseArchitecture("baseline"), Architecture::BaselineGrid);
    EXPECT_EQ(parseArchitecture("alternate"),
              Architecture::AlternateGrid);
    EXPECT_EQ(parseArchitecture("dynamic"), Architecture::DynamicGrid);
    EXPECT_EQ(parseArchitecture("ring"), Architecture::RingEjf);
    EXPECT_EQ(parseArchitecture("mesh"), Architecture::MeshJunction);
    EXPECT_EQ(parseArchitecture("cyclone"), Architecture::Cyclone);
    EXPECT_FALSE(parseArchitecture("warp").has_value());
    EXPECT_FALSE(parseArchitecture("").has_value());
    // Canonical names are aliases of themselves.
    EXPECT_EQ(parseArchitecture("mesh-junction"),
              Architecture::MeshJunction);
}

TEST(TimedScheduleCheck, RejectsOverlapsAndBadOps)
{
    TimedSchedule sched;
    sched.numResources = 2;
    sched.numIons = 1;
    TimedOp a;
    a.resource = 0;
    a.startUs = 0.0;
    a.durationUs = 10.0;
    sched.ops.push_back(a);
    TimedOp b = a;
    b.startUs = 10.0; // Abutting is fine.
    sched.ops.push_back(b);
    EXPECT_TRUE(sched.validate());

    TimedOp c = a;
    c.startUs = 15.0; // Overlaps b's [10, 20).
    sched.ops.push_back(c);
    std::string why;
    EXPECT_FALSE(sched.validate(&why));
    EXPECT_NE(why.find("double booked"), std::string::npos);

    sched.ops.pop_back();
    TimedOp d;
    d.resource = 7; // Out of range.
    sched.ops.push_back(d);
    EXPECT_FALSE(sched.validate(&why));
    EXPECT_NE(why.find("out of range"), std::string::npos);

    sched.ops.pop_back();
    TimedOp e;
    e.resource = kNoResource;
    e.durationUs = -1.0;
    sched.ops.push_back(e);
    EXPECT_FALSE(sched.validate(&why));
    EXPECT_NE(why.find("negative"), std::string::npos);
}

TEST(TimedScheduleCheck, ResourceFreeOpsSkipOverlapCheck)
{
    // Lockstep barriers / conservative physical ops share time freely.
    TimedSchedule sched;
    sched.numResources = 1;
    sched.numIons = 2;
    for (int i = 0; i < 3; ++i) {
        TimedOp op;
        op.resource = kNoResource;
        op.ionA = static_cast<uint32_t>(i % 2);
        op.startUs = 0.0;
        op.durationUs = 5.0;
        sched.ops.push_back(op);
    }
    EXPECT_TRUE(sched.validate());
    EXPECT_DOUBLE_EQ(sched.makespan(), 5.0);
}

TEST(TimedScheduleCheck, IonBusyChargesBothIonsOfCountedOps)
{
    TimedSchedule sched;
    sched.numResources = 1;
    sched.numIons = 3;
    TimedOp gate;
    gate.category = OpCategory::Gate;
    gate.resource = 0;
    gate.ionA = 2;
    gate.ionB = 0;
    gate.startUs = 0.0;
    gate.durationUs = 7.0;
    sched.ops.push_back(gate);
    TimedOp hold = gate;
    hold.startUs = 7.0;
    hold.counted = false; // Holds never charge ions.
    sched.ops.push_back(hold);
    const auto busy = sched.ionBusyUs();
    EXPECT_DOUBLE_EQ(busy[0], 7.0);
    EXPECT_DOUBLE_EQ(busy[1], 0.0);
    EXPECT_DOUBLE_EQ(busy[2], 7.0);
    const auto idle = sched.ionIdleUs();
    EXPECT_DOUBLE_EQ(idle[1], sched.makespan());
    EXPECT_DOUBLE_EQ(idle[0], sched.makespan() - 7.0);
}

TEST(WaitHistogramCheck, BinsByLogTwo)
{
    WaitHistogram hist;
    hist.add(0.0);   // Ignored.
    hist.add(-3.0);  // Ignored.
    hist.add(0.5);   // Bin 0: (0, 1).
    hist.add(1.0);   // Bin 1: [1, 2).
    hist.add(3.0);   // Bin 2: [2, 4).
    hist.add(1e9);   // Clamped to the last bin.
    EXPECT_EQ(hist.waits, 4u);
    EXPECT_EQ(hist.bins[0], 1u);
    EXPECT_EQ(hist.bins[1], 1u);
    EXPECT_EQ(hist.bins[2], 1u);
    EXPECT_EQ(hist.bins[WaitHistogram::kBins - 1], 1u);
    EXPECT_DOUBLE_EQ(hist.totalWaitUs, 0.5 + 1.0 + 3.0 + 1e9);
}

/** The IR summary must match CompileResult bit-for-bit. */
void
expectSummaryMatchesIr(const CompileResult& r, const std::string& label)
{
    std::string why;
    EXPECT_TRUE(r.schedule.validate(&why)) << label << ": " << why;
    EXPECT_FALSE(r.schedule.ops.empty()) << label;
    EXPECT_EQ(r.execTimeUs, r.schedule.makespan()) << label;
    const TimeBreakdown derived = r.schedule.breakdown();
    EXPECT_EQ(r.serialized.gateUs, derived.gateUs) << label;
    EXPECT_EQ(r.serialized.shuttleUs, derived.shuttleUs) << label;
    EXPECT_EQ(r.serialized.junctionUs, derived.junctionUs) << label;
    EXPECT_EQ(r.serialized.swapUs, derived.swapUs) << label;
    EXPECT_EQ(r.serialized.measureUs, derived.measureUs) << label;
    EXPECT_EQ(r.serialized.prepUs, derived.prepUs) << label;
    // Gate ops are counted one IR entry each.
    const auto counts = r.schedule.opCounts();
    EXPECT_EQ(counts[static_cast<size_t>(OpCategory::Gate)], r.gateOps)
        << label;
}

class IrOnCodes : public ::testing::TestWithParam<std::string>
{};

TEST_P(IrOnCodes, AllSixArchitecturesEmitValidExactIr)
{
    const CssCode code = GetParam() == "surface13"
        ? makeHgpCode(ClassicalCode::repetition(3), 3)
        : catalog::byName(GetParam());
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    for (Architecture arch : kAllArchitectures) {
        CodesignConfig config;
        config.architecture = arch;
        const CompileResult r = compileCodesign(code, schedule, config);
        expectSummaryMatchesIr(
            r, GetParam() + "/" + architectureName(arch));
        EXPECT_GT(r.execTimeUs, 0.0);
        EXPECT_GE(r.serialized.total(), r.execTimeUs * 0.999);
    }
}

INSTANTIATE_TEST_SUITE_P(Codes, IrOnCodes,
                         ::testing::Values("bb72", "surface13",
                                           "hgp225"));

TEST(CompilerRegistry, ServesEveryArchitecture)
{
    for (Architecture arch : kAllArchitectures)
        EXPECT_EQ(compilerFor(arch).architecture(), arch);
}

TEST(CompilerRegistry, DispatchMatchesCompileCodesign)
{
    const CssCode code = catalog::bb72();
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    CodesignConfig config;
    config.architecture = Architecture::BaselineGrid;
    const CompileResult via_registry =
        compilerFor(config.architecture).compile(code, schedule, config);
    const CompileResult via_codesign =
        compileCodesign(code, schedule, config);
    EXPECT_EQ(via_registry.compilerName, via_codesign.compilerName);
    EXPECT_EQ(via_registry.execTimeUs, via_codesign.execTimeUs);
    EXPECT_EQ(via_registry.schedule.ops.size(),
              via_codesign.schedule.ops.size());
}

TEST(IdealIr, MakespanIsParallelTimeAndBreakdownIsSerialTime)
{
    const CssCode code = catalog::bb72();
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    const IdealLatency lat = idealLatencies(code, schedule);
    std::string why;
    EXPECT_TRUE(lat.schedule.validate(&why)) << why;
    EXPECT_EQ(lat.schedule.makespan(), lat.parallelUs);
    EXPECT_NEAR(lat.schedule.breakdown().total(), lat.serialUs,
                lat.serialUs * 1e-12);
    const auto counts = lat.schedule.opCounts();
    EXPECT_EQ(counts[static_cast<size_t>(OpCategory::Gate)], lat.gates);
    EXPECT_EQ(counts[static_cast<size_t>(OpCategory::Measure)],
              code.numStabs());
}

TEST(CycloneIr, EveryDataQubitIsGatedAndNoResourceIsDoubleBooked)
{
    const CssCode code = catalog::bb72();
    CodesignConfig config;
    config.architecture = Architecture::Cyclone;
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    const CompileResult r = compileCodesign(code, schedule, config);
    const auto busy = r.schedule.ionBusyUs();
    for (size_t q = 0; q < code.numQubits(); ++q)
        EXPECT_GT(busy[q], 0.0) << "data qubit " << q;
    // Per-qubit idle windows are strictly inside the round.
    for (double idle : r.schedule.ionIdleUs())
        EXPECT_LT(idle, r.execTimeUs);
    // Cyclone is roadblock-free: no recorded waits.
    EXPECT_EQ(r.schedule.waitHistogram().waits, 0u);
}

TEST(EjfIr, RoadblockedCompileRecordsWaits)
{
    // hgp225 on the baseline grid roadblocks (see test_compilers);
    // those waits must surface in the IR histogram.
    const CssCode code = catalog::hgp225();
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    CodesignConfig config;
    config.architecture = Architecture::BaselineGrid;
    const CompileResult r = compileCodesign(code, schedule, config);
    EXPECT_GT(r.trapRoadblocks, 0u);
    const WaitHistogram waits = r.schedule.waitHistogram();
    EXPECT_GT(waits.waits, 0u);
    EXPECT_GT(waits.totalWaitUs, 0.0);
}

} // namespace
} // namespace cyclone
