/**
 * @file
 * Tests for the RNG and statistics helpers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace cyclone {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10 && !differ; ++i)
        differ = a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(13);
    for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(17);
    bool seen[5] = {};
    for (int i = 0; i < 500; ++i)
        seen[rng.below(5)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(23);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.2);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(Rng, GeometricSkipEdgeCases)
{
    Rng rng(29);
    EXPECT_EQ(rng.geometricSkip(1.0), 0u);
    EXPECT_EQ(rng.geometricSkip(0.0), ~0ull);
    EXPECT_EQ(rng.geometricSkip(-0.5), ~0ull);
}

TEST(Rng, GeometricSkipMean)
{
    // Mean of the geometric skip (failures before success) is
    // (1 - p) / p.
    Rng rng(31);
    const double p = 0.05;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometricSkip(p));
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / n, expected, expected * 0.1);
}

TEST(Rng, SplitStreamsDiffer)
{
    Rng base(37);
    Rng a = base.split();
    Rng b = base.split();
    bool differ = false;
    for (int i = 0; i < 10 && !differ; ++i)
        differ = a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(Stats, EstimateRateBasics)
{
    auto est = estimateRate(5, 100);
    EXPECT_EQ(est.trials, 100u);
    EXPECT_EQ(est.successes, 5u);
    EXPECT_DOUBLE_EQ(est.rate, 0.05);
    EXPECT_NEAR(est.stderr, std::sqrt(0.05 * 0.95 / 100.0), 1e-12);
}

TEST(Stats, EstimateRateZeroTrials)
{
    auto est = estimateRate(0, 0);
    EXPECT_EQ(est.rate, 0.0);
    EXPECT_EQ(est.stderr, 0.0);
}

TEST(Stats, WilsonHalfWidthSane)
{
    // Wider at small n, narrower at large n.
    const double small_n = wilsonHalfWidth(1, 10);
    const double large_n = wilsonHalfWidth(100, 1000);
    EXPECT_GT(small_n, large_n);
    EXPECT_GT(small_n, 0.0);
    EXPECT_EQ(wilsonHalfWidth(0, 0), 0.0);
    // Zero successes still give a nonzero upper bound.
    EXPECT_GT(wilsonHalfWidth(0, 100), 0.0);
}

} // namespace
} // namespace cyclone
