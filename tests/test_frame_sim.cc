/**
 * @file
 * Tests for Pauli-frame simulation and fault propagation.
 */

#include <gtest/gtest.h>

#include "circuit/frame_simulator.h"
#include "circuit/memory_circuit.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

CssCode
surface13()
{
    return makeHgpCode(ClassicalCode::repetition(3), 3);
}

TEST(FrameSim, XErrorFlipsZMeasurement)
{
    Circuit c(1);
    c.xError(0, 1.0); // deterministic flip
    c.measureZ(0);
    c.addDetector({0});
    FrameSimulator sim(c);
    Rng rng(1);
    auto s = sim.sample(10, rng);
    for (const BitVec& d : s.detectors)
        EXPECT_TRUE(d.get(0));
}

TEST(FrameSim, ZErrorInvisibleToZMeasurement)
{
    Circuit c(1);
    c.zError(0, 1.0);
    c.measureZ(0);
    c.addDetector({0});
    FrameSimulator sim(c);
    Rng rng(1);
    auto s = sim.sample(10, rng);
    for (const BitVec& d : s.detectors)
        EXPECT_FALSE(d.get(0));
}

TEST(FrameSim, ZErrorFlipsXMeasurement)
{
    Circuit c(1);
    c.resetX(0);
    c.zError(0, 1.0);
    c.measureX(0);
    c.addDetector({0});
    FrameSimulator sim(c);
    Rng rng(1);
    auto s = sim.sample(5, rng);
    for (const BitVec& d : s.detectors)
        EXPECT_TRUE(d.get(0));
}

TEST(FrameSim, CxPropagatesXForward)
{
    // X on control before CX flips both qubits' Z measurements.
    Circuit c(2);
    c.xError(0, 1.0);
    c.cx(0, 1);
    c.measureZ(0);
    c.measureZ(1);
    c.addDetector({0});
    c.addDetector({1});
    FrameSimulator sim(c);
    Rng rng(1);
    auto s = sim.sample(3, rng);
    for (const BitVec& d : s.detectors) {
        EXPECT_TRUE(d.get(0));
        EXPECT_TRUE(d.get(1));
    }
}

TEST(FrameSim, CxPropagatesZBackward)
{
    // Z on target before CX propagates to the control (visible via
    // X-basis measurement on the control).
    Circuit c(2);
    c.resetX(0);
    c.resetZ(1);
    c.zError(1, 1.0);
    c.cx(0, 1);
    c.measureX(0);
    c.addDetector({0});
    FrameSimulator sim(c);
    Rng rng(1);
    auto s = sim.sample(3, rng);
    for (const BitVec& d : s.detectors)
        EXPECT_TRUE(d.get(0));
}

TEST(FrameSim, ResetClearsFrame)
{
    Circuit c(1);
    c.xError(0, 1.0);
    c.resetZ(0);
    c.measureZ(0);
    c.addDetector({0});
    FrameSimulator sim(c);
    Rng rng(1);
    auto s = sim.sample(3, rng);
    for (const BitVec& d : s.detectors)
        EXPECT_FALSE(d.get(0));
}

TEST(FrameSim, ObservableParity)
{
    Circuit c(2);
    c.xError(0, 1.0);
    c.xError(1, 1.0);
    c.measureZ(0);
    c.measureZ(1);
    c.addObservable(0, {0, 1}); // both flip: parity 0
    c.addObservable(1, {0});    // single flip: parity 1
    FrameSimulator sim(c);
    Rng rng(1);
    auto s = sim.sample(3, rng);
    for (uint64_t obs : s.observables)
        EXPECT_EQ(obs, 2u); // only observable 1 set
}

class NoiselessMemory : public ::testing::TestWithParam<std::string>
{};

TEST_P(NoiselessMemory, AllDetectorsDeterministic)
{
    CssCode code = catalog::byName(GetParam());
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 3;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    FrameSimulator sim(circuit);
    Rng rng(11);
    auto s = sim.sample(8, rng);
    for (const BitVec& d : s.detectors)
        EXPECT_TRUE(d.isZero());
    for (uint64_t obs : s.observables)
        EXPECT_EQ(obs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Catalog, NoiselessMemory,
                         ::testing::Values("hgp225", "bb72", "bb90"));

TEST(FrameSim, PropagateFaultMatchesSampling)
{
    // Injecting a deterministic fault via propagateFault must match
    // running the circuit with that single error at p = 1.
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 2;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit clean = buildZMemoryCircuit(code, sched, opts);

    // Find the first CX and inject an X fault on its target.
    size_t cx_index = SIZE_MAX;
    for (size_t i = 0; i < clean.ops().size(); ++i) {
        if (clean.ops()[i].kind == OpKind::Cx) {
            cx_index = i;
            break;
        }
    }
    ASSERT_NE(cx_index, SIZE_MAX);
    const uint32_t victim = clean.ops()[cx_index].targets[1];

    FrameSimulator sim(clean);
    BitVec det_flips;
    uint64_t obs_mask = 0;
    sim.propagateFault(cx_index, victim, true, false, det_flips,
                       obs_mask);
    // A data X fault in round 1 must flip at least one detector
    // (the code detects single faults).
    EXPECT_GT(det_flips.popcount(), 0u);
}

TEST(FrameSim, MemoryCircuitDetectorCounts)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 4;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    const size_t mx = code.numXStabs();
    const size_t mz = code.numZStabs();
    // Z detectors: rounds + final; X detectors: rounds - 1.
    EXPECT_EQ(circuit.numDetectors(),
              mz * (4 + 1) + mx * (4 - 1));
    EXPECT_EQ(circuit.numObservables(), code.numLogical());
    // Measurements: per round mx + mz, plus final data readout.
    EXPECT_EQ(circuit.numMeasurements(),
              4 * (mx + mz) + code.numQubits());
}

} // namespace
} // namespace cyclone
