/**
 * @file
 * Tests for the CSS code abstraction and logical operators.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/css_code.h"
#include "qec/hgp_code.h"

namespace cyclone {
namespace {

TEST(CssCode, RejectsNonCommutingMatrices)
{
    // Hx = [1 1 0], Hz = [1 0 0]: anticommute on qubit 0 only.
    SparseGF2 hx(1, 3), hz(1, 3);
    hx.setRowSupport(0, {0, 1});
    hz.setRowSupport(0, {0});
    EXPECT_THROW(CssCode(hx, hz, "bad"), std::runtime_error);
}

TEST(CssCode, AcceptsCommutingMatrices)
{
    SparseGF2 hx(1, 4), hz(1, 4);
    hx.setRowSupport(0, {0, 1});
    hz.setRowSupport(0, {0, 1});
    CssCode code(hx, hz, "tiny");
    EXPECT_EQ(code.numQubits(), 4u);
    EXPECT_EQ(code.numLogical(), 2u);
}

class CatalogCodes : public ::testing::TestWithParam<std::string>
{};

TEST_P(CatalogCodes, CssConditionAndParameters)
{
    CssCode code = catalog::byName(GetParam());
    // CSS condition is checked by the constructor; reaching here means
    // it held. Verify published [[n, k]].
    if (GetParam() == "hgp225") {
        EXPECT_EQ(code.numQubits(), 225u);
        EXPECT_EQ(code.numLogical(), 9u);
        EXPECT_EQ(code.nominalDistance(), 6u);
    } else if (GetParam() == "hgp400") {
        EXPECT_EQ(code.numQubits(), 400u);
        EXPECT_EQ(code.numLogical(), 16u);
    } else if (GetParam() == "hgp625") {
        EXPECT_EQ(code.numQubits(), 625u);
        EXPECT_EQ(code.numLogical(), 25u);
        EXPECT_EQ(code.nominalDistance(), 8u);
    } else if (GetParam() == "bb72") {
        EXPECT_EQ(code.numQubits(), 72u);
        EXPECT_EQ(code.numLogical(), 12u);
    } else if (GetParam() == "bb90") {
        EXPECT_EQ(code.numQubits(), 90u);
        EXPECT_EQ(code.numLogical(), 8u);
    } else if (GetParam() == "bb108") {
        EXPECT_EQ(code.numQubits(), 108u);
        EXPECT_EQ(code.numLogical(), 8u);
    } else if (GetParam() == "bb144") {
        EXPECT_EQ(code.numQubits(), 144u);
        EXPECT_EQ(code.numLogical(), 12u);
    } else if (GetParam() == "bb288") {
        EXPECT_EQ(code.numQubits(), 288u);
        EXPECT_EQ(code.numLogical(), 12u);
    }
}

TEST_P(CatalogCodes, LogicalZProperties)
{
    CssCode code = catalog::byName(GetParam());
    const auto& lz = code.logicalZ();
    ASSERT_EQ(lz.size(), code.numLogical());
    GF2Matrix hx = code.hx().toDense();
    for (const BitVec& l : lz) {
        // Commutes with all X stabilizers: in ker(Hx).
        EXPECT_TRUE(hx.multiply(l).isZero());
        EXPECT_FALSE(l.isZero());
    }
    // Independent of the Z stabilizer row space.
    GF2Matrix hz = code.hz().toDense();
    const size_t base_rank = hz.rank();
    GF2Matrix stack = hz;
    for (const BitVec& l : lz)
        stack.appendRow(l);
    EXPECT_EQ(stack.rank(), base_rank + lz.size());
}

TEST_P(CatalogCodes, LogicalXProperties)
{
    CssCode code = catalog::byName(GetParam());
    const auto& lx = code.logicalX();
    ASSERT_EQ(lx.size(), code.numLogical());
    GF2Matrix hz = code.hz().toDense();
    for (const BitVec& l : lx)
        EXPECT_TRUE(hz.multiply(l).isZero());
    GF2Matrix hx = code.hx().toDense();
    const size_t base_rank = hx.rank();
    GF2Matrix stack = hx;
    for (const BitVec& l : lx)
        stack.appendRow(l);
    EXPECT_EQ(stack.rank(), base_rank + lx.size());
}

TEST_P(CatalogCodes, LogicalPairingNondegenerate)
{
    // The k x k anticommutation matrix Lx . Lz^T must be full rank:
    // every logical X pairs with some logical Z.
    CssCode code = catalog::byName(GetParam());
    const auto& lx = code.logicalX();
    const auto& lz = code.logicalZ();
    GF2Matrix pairing(lx.size(), lz.size());
    for (size_t i = 0; i < lx.size(); ++i) {
        for (size_t j = 0; j < lz.size(); ++j)
            pairing.set(i, j, lx[i].dotParity(lz[j]));
    }
    EXPECT_EQ(pairing.rank(), code.numLogical());
}

INSTANTIATE_TEST_SUITE_P(Catalog, CatalogCodes,
                         ::testing::Values("hgp225", "bb72", "bb90",
                                           "bb108", "bb144"));

TEST(CssCode, DistanceUpperBoundSurface)
{
    // HGP of rep(3) is the [[13, 1, 3]] surface code.
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    EXPECT_EQ(code.numQubits(), 13u);
    EXPECT_EQ(code.numLogical(), 1u);
    Rng rng(5);
    const size_t ub = code.distanceUpperBound(300, rng);
    EXPECT_GE(ub, 3u);
    EXPECT_LE(ub, 13u);
    // The search should find the true distance for this tiny code.
    EXPECT_EQ(ub, 3u);
}

TEST(CssCode, ParameterString)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    EXPECT_EQ(code.parameterString(), "[[13,1,3]]");
}

TEST(Catalog, NamesRoundTrip)
{
    for (const std::string& name : catalog::names())
        EXPECT_NO_THROW(catalog::byName(name));
    EXPECT_THROW(catalog::byName("nope"), std::runtime_error);
}

TEST(Catalog, StabilizerWeightsBB)
{
    // BB codes have weight-6 stabilizers (|A| + |B| = 3 + 3).
    for (const CssCode& code : catalog::allBbCodes()) {
        EXPECT_EQ(code.maxXWeight(), 6u) << code.name();
        EXPECT_EQ(code.maxZWeight(), 6u) << code.name();
    }
}

TEST(Catalog, EqualStabilizerSplit)
{
    for (const std::string& name : catalog::names()) {
        CssCode code = catalog::byName(name);
        EXPECT_EQ(code.numXStabs(), code.numZStabs()) << name;
        EXPECT_EQ(code.numStabs(),
                  code.numXStabs() + code.numZStabs());
    }
}

} // namespace
} // namespace cyclone
