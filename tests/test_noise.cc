/**
 * @file
 * Tests for the Pauli-twirl decoherence model and noise assembly.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "noise/noise_model.h"
#include "noise/pauli_twirl.h"

namespace cyclone {
namespace {

TEST(PauliTwirl, ZeroTimeIsNoiseless)
{
    auto ch = twirlDecoherence(0.0, 10.0, 10.0);
    EXPECT_EQ(ch.px, 0.0);
    EXPECT_EQ(ch.py, 0.0);
    EXPECT_EQ(ch.pz, 0.0);
    EXPECT_EQ(ch.total(), 0.0);
}

TEST(PauliTwirl, InfiniteTimeFullyDepolarizes)
{
    // t >> T1, T2: px = py = 1/4, pz = 1/2 - 1/4 = 1/4.
    auto ch = twirlDecoherence(1e12, 1.0, 1.0);
    EXPECT_NEAR(ch.px, 0.25, 1e-9);
    EXPECT_NEAR(ch.py, 0.25, 1e-9);
    EXPECT_NEAR(ch.pz, 0.25, 1e-9);
    EXPECT_NEAR(ch.total(), 0.75, 1e-9);
}

TEST(PauliTwirl, ShortTimeLinearization)
{
    // For t << T: px = py ~ t/(4 T1), pz ~ t/(2 T2) - t/(4 T1).
    const double t_us = 1000.0; // 1 ms
    const double t1 = 10.0, t2 = 5.0;
    auto ch = twirlDecoherence(t_us, t1, t2);
    const double t_s = 1e-3;
    EXPECT_NEAR(ch.px, t_s / (4 * t1), 1e-7);
    EXPECT_NEAR(ch.pz, t_s / (2 * t2) - t_s / (4 * t1), 1e-7);
}

TEST(PauliTwirl, MonotoneInIdleTime)
{
    double prev = -1.0;
    for (double t : {1e2, 1e3, 1e4, 1e5, 1e6}) {
        auto ch = twirlDecoherence(t, 20.0, 20.0);
        EXPECT_GT(ch.total(), prev);
        prev = ch.total();
    }
}

TEST(PauliTwirl, PureT1StillDephases)
{
    // T2 = 2 T1 is the pure-damping limit: pz >= 0 enforced.
    auto ch = twirlDecoherence(1e5, 1.0, 2.0);
    EXPECT_GE(ch.pz, 0.0);
}

TEST(CoherenceFit, PaperAnchors)
{
    // p = 1e-4 -> 100 s; p = 1e-3 -> 10 s (Section II-C2).
    EXPECT_NEAR(coherenceTimeSeconds(1e-4), 100.0, 1e-9);
    EXPECT_NEAR(coherenceTimeSeconds(1e-3), 10.0, 1e-9);
    EXPECT_NEAR(coherenceTimeSeconds(5e-4), 20.0, 1e-9);
}

TEST(CoherenceFit, MonotoneDecreasing)
{
    EXPECT_GT(coherenceTimeSeconds(1e-4), coherenceTimeSeconds(2e-4));
}

TEST(NoiseModel, UniformDefaults)
{
    auto m = NoiseModel::uniform(1e-3);
    EXPECT_DOUBLE_EQ(m.p2(), 1e-3);
    EXPECT_DOUBLE_EQ(m.pPrep(), 1e-3);
    EXPECT_DOUBLE_EQ(m.pMeas(), 1e-3);
    EXPECT_EQ(m.idle.total(), 0.0);
}

TEST(NoiseModel, ExplicitOverrides)
{
    NoiseModel m = NoiseModel::uniform(1e-3);
    m.twoQubitError = 5e-3;
    m.measError = 2e-3;
    EXPECT_DOUBLE_EQ(m.p2(), 5e-3);
    EXPECT_DOUBLE_EQ(m.pMeas(), 2e-3);
    EXPECT_DOUBLE_EQ(m.pPrep(), 1e-3);
}

TEST(NoiseModel, LatencyCouplesIntoIdleChannel)
{
    auto quiet = NoiseModel::withLatency(1e-3, 1000.0);
    auto slow = NoiseModel::withLatency(1e-3, 500000.0);
    EXPECT_GT(slow.idle.total(), quiet.idle.total());
    EXPECT_GT(quiet.idle.total(), 0.0);
    // Halving execution time lowers idle error roughly linearly.
    auto half = NoiseModel::withLatency(1e-3, 250000.0);
    EXPECT_NEAR(half.idle.total() / slow.idle.total(), 0.5, 0.02);
}

TEST(NoiseModel, LatencyErrorDependsOnPhysicalRate)
{
    // Lower physical error implies longer coherence, so the same
    // latency hurts less.
    auto good = NoiseModel::withLatency(1e-4, 100000.0);
    auto bad = NoiseModel::withLatency(1e-3, 100000.0);
    EXPECT_LT(good.idle.total(), bad.idle.total());
}

} // namespace
} // namespace cyclone
