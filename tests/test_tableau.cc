/**
 * @file
 * Tests for the CHP tableau simulator and the determinism contract of
 * the memory-circuit builder (detectors/observables must be constant
 * across random measurement branches).
 */

#include <gtest/gtest.h>

#include "circuit/memory_circuit.h"
#include "circuit/tableau_simulator.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

TEST(Tableau, FreshQubitsMeasureZero)
{
    Rng rng(1);
    TableauSimulator sim(4, rng);
    for (size_t q = 0; q < 4; ++q) {
        EXPECT_TRUE(sim.isZMeasurementDeterministic(q));
        EXPECT_FALSE(sim.measureZ(q));
    }
}

TEST(Tableau, XFlipsMeasurement)
{
    Rng rng(1);
    TableauSimulator sim(2, rng);
    sim.x(0);
    EXPECT_TRUE(sim.measureZ(0));
    EXPECT_FALSE(sim.measureZ(1));
}

TEST(Tableau, HadamardCreatesRandomness)
{
    Rng rng(7);
    size_t ones = 0;
    for (int trial = 0; trial < 64; ++trial) {
        TableauSimulator sim(1, rng);
        sim.h(0);
        EXPECT_FALSE(sim.isZMeasurementDeterministic(0));
        ones += sim.measureZ(0);
        // After measurement the state collapses: repeating gives the
        // same answer.
        const bool again = sim.measureZ(0);
        EXPECT_TRUE(sim.isZMeasurementDeterministic(0));
        (void)again;
    }
    EXPECT_GT(ones, 16u);
    EXPECT_LT(ones, 48u);
}

TEST(Tableau, PlusStateMeasuresXDeterministically)
{
    Rng rng(3);
    TableauSimulator sim(1, rng);
    sim.resetX(0);
    EXPECT_FALSE(sim.measureX(0));
    sim.z(0); // |+> -> |->
    EXPECT_TRUE(sim.measureX(0));
}

TEST(Tableau, BellPairCorrelations)
{
    Rng rng(11);
    for (int trial = 0; trial < 32; ++trial) {
        TableauSimulator sim(2, rng);
        sim.h(0);
        sim.cx(0, 1);
        const bool a = sim.measureZ(0);
        const bool b = sim.measureZ(1);
        EXPECT_EQ(a, b); // perfectly correlated in Z
    }
}

TEST(Tableau, GhzParityDeterministic)
{
    // X X X stabilizes GHZ; measuring all three in X gives parity 0.
    Rng rng(13);
    for (int trial = 0; trial < 16; ++trial) {
        TableauSimulator sim(3, rng);
        sim.h(0);
        sim.cx(0, 1);
        sim.cx(1, 2);
        bool parity = sim.measureX(0);
        parity ^= sim.measureX(1);
        parity ^= sim.measureX(2);
        EXPECT_FALSE(parity);
    }
}

TEST(Tableau, ResetAfterEntanglement)
{
    Rng rng(17);
    TableauSimulator sim(2, rng);
    sim.h(0);
    sim.cx(0, 1);
    sim.resetZ(0);
    EXPECT_FALSE(sim.measureZ(0));
}

class MemoryCircuitDeterminism
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(MemoryCircuitDeterminism, ZMemoryDetectorsDeterministic)
{
    CssCode code = GetParam() == "surface13"
        ? makeHgpCode(ClassicalCode::repetition(3), 3)
        : catalog::byName(GetParam());
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 2;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    auto check = verifyStabilizerCircuit(circuit, 4, 99);
    EXPECT_TRUE(check.detectorsDeterministic);
    EXPECT_TRUE(check.observablesDeterministic);
    EXPECT_EQ(check.shotsChecked, 4u);
}

TEST_P(MemoryCircuitDeterminism, XMemoryDetectorsDeterministic)
{
    CssCode code = GetParam() == "surface13"
        ? makeHgpCode(ClassicalCode::repetition(3), 3)
        : catalog::byName(GetParam());
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 2;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit circuit = buildXMemoryCircuit(code, sched, opts);
    auto check = verifyStabilizerCircuit(circuit, 4, 101);
    EXPECT_TRUE(check.detectorsDeterministic);
    EXPECT_TRUE(check.observablesDeterministic);
}

INSTANTIATE_TEST_SUITE_P(Codes, MemoryCircuitDeterminism,
                         ::testing::Values("surface13", "bb72"));

TEST(Tableau, CatchesNonDeterministicDetector)
{
    // A detector on a genuinely random measurement must be flagged.
    Circuit circuit(1);
    circuit.resetX(0);
    circuit.measureZ(0); // random
    circuit.addDetector({0});
    auto check = verifyStabilizerCircuit(circuit, 16, 5);
    EXPECT_FALSE(check.detectorsDeterministic);
}

TEST(Tableau, InterleavedScheduleAlsoDeterministic)
{
    // The phase-projected builder keeps determinism even when fed an
    // interleaved (edge-colored) schedule.
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeInterleavedSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = 2;
    opts.noise = NoiseModel::uniform(0.0);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    auto check = verifyStabilizerCircuit(circuit, 6, 7);
    EXPECT_TRUE(check.detectorsDeterministic);
}

} // namespace
} // namespace cyclone
