/**
 * @file
 * Construction tests for hypergraph product and bivariate bicycle
 * codes.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qec/bb_code.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"

namespace cyclone {
namespace {

class HgpRepetition : public ::testing::TestWithParam<size_t>
{};

TEST_P(HgpRepetition, SurfaceCodeParameters)
{
    // HGP of two distance-L repetition codes is the [[L^2 + (L-1)^2,
    // 1, L]] (rotated-boundary) surface code.
    const size_t len = GetParam();
    CssCode code = makeHgpCode(ClassicalCode::repetition(len),
                               static_cast<size_t>(len));
    EXPECT_EQ(code.numQubits(), len * len + (len - 1) * (len - 1));
    EXPECT_EQ(code.numLogical(), 1u);
    EXPECT_EQ(code.numXStabs(), (len - 1) * len);
    EXPECT_EQ(code.numZStabs(), len * (len - 1));
    // Surface-code stabilizers have weight <= 4 when built from
    // weight-2 checks.
    EXPECT_LE(code.maxXWeight(), 4u);
    EXPECT_LE(code.maxZWeight(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HgpRepetition,
                         ::testing::Values(2, 3, 4, 5, 7));

TEST(Hgp, HammingProductParameters)
{
    // HGP(Hamming(3)) = [[7*7 + 3*3, 16, 3]] = [[58, 16, 3]].
    CssCode code = makeHgpCode(ClassicalCode::hamming(3), 3);
    EXPECT_EQ(code.numQubits(), 58u);
    EXPECT_EQ(code.numLogical(), 16u);
}

TEST(Hgp, AsymmetricProduct)
{
    // k = k1 * k2 for full-rank seeds.
    ClassicalCode c1 = ClassicalCode::repetition(3); // k = 1
    ClassicalCode c2 = ClassicalCode::hamming(3);    // k = 4
    CssCode code = makeHgpCode(c1, c2);
    EXPECT_EQ(code.numQubits(), 3u * 7u + 2u * 3u);
    EXPECT_EQ(code.numLogical(), 4u);
}

TEST(Hgp, StabilizerWeightIsRowPlusColWeight)
{
    // X stabilizer weight = (row weight of H1) + (column weight of
    // H2): for repetition codes that is 2 + <=2.
    CssCode code = makeHgpCode(ClassicalCode::repetition(4), 4);
    EXPECT_LE(code.maxXWeight(), 4u);
    EXPECT_GE(code.maxXWeight(), 3u);
}

TEST(Bb, MinimalToric)
{
    // A = x + 1, B = y + 1 over l = m = 2 gives the [[8, 2, 2]]-ish
    // toric-like code; verify n and CSS structure hold.
    CssCode code = makeBbCode(2, 2, {{1, 0}, {0, 0}},
                              {{0, 1}, {0, 0}}, 2);
    EXPECT_EQ(code.numQubits(), 8u);
    EXPECT_EQ(code.numXStabs(), 4u);
    EXPECT_EQ(code.numZStabs(), 4u);
}

TEST(Bb, RepeatedMonomialsCancel)
{
    // A polynomial with a duplicated monomial cancels mod 2, leaving
    // a weight-1 row from the remaining term.
    CssCode code = makeBbCode(3, 3, {{1, 0}, {1, 0}, {0, 1}},
                              {{0, 1}, {0, 1}, {1, 0}});
    EXPECT_EQ(code.maxXWeight(), 2u);
}

TEST(Bb, NameGeneration)
{
    CssCode code = makeBbCode(6, 6, {{3, 0}, {0, 1}, {0, 2}},
                              {{0, 3}, {1, 0}, {2, 0}});
    EXPECT_NE(code.name().find("BB(l=6,m=6"), std::string::npos);
    EXPECT_NE(code.name().find("x^3+y+y^2"), std::string::npos);
}

struct BbSpec
{
    size_t l, m;
    std::vector<BbMonomial> a, b;
    size_t n, k;
};

class BbPublished : public ::testing::TestWithParam<BbSpec>
{};

TEST_P(BbPublished, PublishedParameters)
{
    const BbSpec& spec = GetParam();
    CssCode code = makeBbCode(spec.l, spec.m, spec.a, spec.b);
    EXPECT_EQ(code.numQubits(), spec.n);
    EXPECT_EQ(code.numLogical(), spec.k);
    EXPECT_EQ(code.numXStabs(), spec.n / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Bravyi2024, BbPublished,
    ::testing::Values(
        BbSpec{6, 6, {{3, 0}, {0, 1}, {0, 2}},
               {{0, 3}, {1, 0}, {2, 0}}, 72, 12},
        BbSpec{15, 3, {{9, 0}, {0, 1}, {0, 2}},
               {{0, 0}, {2, 0}, {7, 0}}, 90, 8},
        BbSpec{9, 6, {{3, 0}, {0, 1}, {0, 2}},
               {{0, 3}, {1, 0}, {2, 0}}, 108, 8},
        BbSpec{12, 6, {{3, 0}, {0, 1}, {0, 2}},
               {{0, 3}, {1, 0}, {2, 0}}, 144, 12},
        BbSpec{12, 12, {{3, 0}, {0, 2}, {0, 7}},
               {{0, 3}, {1, 0}, {2, 0}}, 288, 12}));

class BbRandomPolynomials : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(BbRandomPolynomials, CssConditionAlwaysHolds)
{
    // Any polynomial pair yields commuting checks because A and B are
    // elements of a commutative group algebra; the constructor throws
    // if the CSS condition fails, so construction itself is the test.
    Rng rng(GetParam());
    const size_t l = 2 + rng.below(7);
    const size_t m = 2 + rng.below(7);
    const size_t terms = 1 + rng.below(4);
    std::vector<BbMonomial> a, b;
    for (size_t t = 0; t < terms; ++t) {
        a.push_back({rng.below(l), rng.below(m)});
        b.push_back({rng.below(l), rng.below(m)});
    }
    CssCode code = makeBbCode(l, m, a, b);
    EXPECT_EQ(code.numQubits(), 2 * l * m);
    EXPECT_EQ(code.numXStabs(), l * m);
    EXPECT_LE(code.maxXWeight(), 2 * terms);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BbRandomPolynomials,
                         ::testing::Range(uint64_t(1), uint64_t(25)));

class HgpRandomSeeds : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(HgpRandomSeeds, ParameterFormulaHolds)
{
    // k = k1 * k2 for full-rank seeds; n = n1*n2 + m1*m2 always.
    Rng rng(GetParam());
    const size_t n1 = 6 + rng.below(6);
    const size_t m1 = n1 - 2 - rng.below(2);
    GF2Matrix h(m1, n1);
    for (size_t r = 0; r < m1; ++r) {
        for (size_t c = 0; c < n1; ++c)
            h.set(r, c, rng.bernoulli(0.5));
    }
    if (h.rank() != m1)
        GTEST_SKIP() << "seed draw not full rank";
    ClassicalCode seed(h, "rand");
    CssCode code = makeHgpCode(seed, seed);
    EXPECT_EQ(code.numQubits(), n1 * n1 + m1 * m1);
    EXPECT_EQ(code.numLogical(),
              seed.dimension() * seed.dimension());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HgpRandomSeeds,
                         ::testing::Range(uint64_t(1), uint64_t(20)));

} // namespace
} // namespace cyclone
