/**
 * @file
 * End-to-end tests of the codesign API: the paper's headline
 * relationships, measured on the real stack.
 */

#include <gtest/gtest.h>

#include "core/codesign.h"
#include "core/explorer.h"
#include "core/overhead.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

TEST(Codesign, ArchitectureNames)
{
    EXPECT_STREQ(architectureName(Architecture::BaselineGrid),
                 "baseline-grid");
    EXPECT_STREQ(architectureName(Architecture::Cyclone), "cyclone");
    EXPECT_STREQ(architectureName(Architecture::MeshJunction),
                 "mesh-junction");
}

TEST(Codesign, CycloneBeatsBaselineOnHgp225)
{
    // The headline result: Cyclone is substantially faster than the
    // baseline grid on [[225,9,6]] (the paper reports up to 4x
    // across codes).
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    CodesignConfig cfg;
    cfg.architecture = Architecture::Cyclone;
    CompileResult cy = compileCodesign(code, sched, cfg);
    cfg.architecture = Architecture::BaselineGrid;
    CompileResult bl = compileCodesign(code, sched, cfg);
    EXPECT_GT(bl.execTimeUs, 2.0 * cy.execTimeUs);
    // Spatial efficiency: fewer traps and half the ancillas.
    EXPECT_LT(cy.numTraps, bl.numTraps);
    EXPECT_EQ(cy.numAncilla * 2, bl.numAncilla);
    // Spacetime gap (Fig. 16) is large.
    EXPECT_GT(bl.spacetimeCost(), 5.0 * cy.spacetimeCost());
}

TEST(Codesign, ConfusionMatrixOrdering)
{
    // Fig. 6: {dynamic, static} x {circle, grid}. Cyclone (dynamic +
    // circle) is best; static EJF on a circle is the worst; dynamic
    // on a grid loses to static on a grid.
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    CodesignConfig cfg;

    cfg.architecture = Architecture::Cyclone;
    const double dynamic_circle =
        compileCodesign(code, sched, cfg).execTimeUs;
    cfg.architecture = Architecture::BaselineGrid;
    const double static_grid =
        compileCodesign(code, sched, cfg).execTimeUs;
    cfg.architecture = Architecture::DynamicGrid;
    const double dynamic_grid =
        compileCodesign(code, sched, cfg).execTimeUs;
    cfg.architecture = Architecture::RingEjf;
    const double static_circle =
        compileCodesign(code, sched, cfg).execTimeUs;

    EXPECT_LT(dynamic_circle, static_grid);
    EXPECT_LT(static_grid, dynamic_grid);
    EXPECT_LT(dynamic_grid, static_circle);
}

TEST(Codesign, AlternateGridBetweenBaselineAndCyclone)
{
    // Fig. 19 ordering.
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    CodesignConfig cfg;
    cfg.architecture = Architecture::Cyclone;
    const double cy = compileCodesign(code, sched, cfg).execTimeUs;
    cfg.architecture = Architecture::AlternateGrid;
    const double alt = compileCodesign(code, sched, cfg).execTimeUs;
    cfg.architecture = Architecture::BaselineGrid;
    const double bl = compileCodesign(code, sched, cfg).execTimeUs;
    EXPECT_LT(cy, alt);
    EXPECT_LT(alt, bl);
}

TEST(Codesign, EvaluateCouplesLatencyIntoNoise)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    CodesignConfig cfg;
    cfg.architecture = Architecture::Cyclone;
    MemoryExperimentConfig exp;
    exp.shots = 150;
    exp.physicalError = 2e-3;
    exp.rounds = 3;
    exp.seed = 3;
    CodesignEvaluation eval = evaluateCodesign(code, sched, cfg, exp);
    EXPECT_GT(eval.compiled.execTimeUs, 0.0);
    EXPECT_EQ(eval.memory.logicalErrorRate.trials, 150u);
    EXPECT_GT(eval.spacetimeCost, 0.0);
}

TEST(Codesign, CycloneLowerLerThanBaselineUnderLatency)
{
    // The mechanism behind Figs. 14-15: identical base noise, but the
    // baseline's longer rounds inject more decoherence, so its LER is
    // higher. Use the small surface code for fast Monte Carlo, with
    // latencies in the regime where decoherence dominates.
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryExperimentConfig exp;
    exp.shots = 1500;
    exp.physicalError = 1e-3;
    exp.rounds = 3;
    exp.seed = 11;

    MemoryExperimentConfig fast = exp;
    fast.roundLatencyUs = 60000.0;  // Cyclone-like round
    MemoryExperimentConfig slow = exp;
    slow.roundLatencyUs = 600000.0; // heavily roadblocked round

    auto fast_r = runZMemoryExperiment(code, sched, fast);
    auto slow_r = runZMemoryExperiment(code, sched, slow);
    EXPECT_LT(fast_r.logicalErrorRate.rate,
              slow_r.logicalErrorRate.rate);
}

TEST(Overhead, DacCounts)
{
    CssCode code = catalog::bb72();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    CodesignConfig cfg;
    cfg.architecture = Architecture::BaselineGrid;
    CompileResult bl = compileCodesign(code, sched, cfg);
    cfg.architecture = Architecture::Cyclone;
    CompileResult cy = compileCodesign(code, sched, cfg);

    ControlOverhead grid = gridControlOverhead(bl);
    ControlOverhead ring = cycloneControlOverhead(cy);
    // Grid: one DAC per trap (O(n^2) control); Cyclone: constant.
    EXPECT_EQ(grid.dacChannels, bl.numTraps);
    EXPECT_EQ(ring.dacChannels, 1u);
    EXPECT_GT(grid.dacChannels, 10 * ring.dacChannels);
}

TEST(Codesign, GridsSufficeForTopologicalCodes)
{
    // Section II-A4: "for topological codes such as the Surface and
    // Color Codes, the gridlike QCCD structure is already fast and
    // sufficient" — the baseline-vs-Cyclone gap must be much smaller
    // for a surface code than for a size-matched HGP code, because
    // local stabilizers cluster-map with short routes.
    CssCode surface = catalog::surface(11); // [[221,1,11]], n ~ 225
    CssCode hgp = catalog::hgp225();
    SyndromeSchedule surf_sched = makeXThenZSchedule(surface);
    SyndromeSchedule hgp_sched = makeXThenZSchedule(hgp);

    CodesignConfig cfg;
    cfg.architecture = Architecture::BaselineGrid;
    const double surf_grid =
        compileCodesign(surface, surf_sched, cfg).execTimeUs;
    const double hgp_grid =
        compileCodesign(hgp, hgp_sched, cfg).execTimeUs;
    cfg.architecture = Architecture::Cyclone;
    const double surf_cyc =
        compileCodesign(surface, surf_sched, cfg).execTimeUs;
    const double hgp_cyc =
        compileCodesign(hgp, hgp_sched, cfg).execTimeUs;

    const double surf_gap = surf_grid / surf_cyc;
    const double hgp_gap = hgp_grid / hgp_cyc;
    EXPECT_LT(surf_gap, hgp_gap)
        << "surface " << surf_grid << "/" << surf_cyc << " vs hgp "
        << hgp_grid << "/" << hgp_cyc;
    // The non-topological code is the one that needs the codesign.
    EXPECT_GT(hgp_gap, 2.0);
}

TEST(Codesign, SurfaceCatalogParameters)
{
    CssCode code = catalog::surface(5);
    EXPECT_EQ(code.numQubits(), 41u);
    EXPECT_EQ(code.numLogical(), 1u);
    EXPECT_EQ(code.nominalDistance(), 5u);
    EXPECT_LE(code.maxXWeight(), 4u);
}

TEST(Codesign, MeshJunctionDispatch)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    CodesignConfig cfg;
    cfg.architecture = Architecture::MeshJunction;
    CompileResult r = compileCodesign(code, sched, cfg);
    EXPECT_EQ(r.compilerName, "mesh-junction");
    EXPECT_EQ(r.trapRoadblocks, 0u);
}

} // namespace
} // namespace cyclone
