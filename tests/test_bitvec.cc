/**
 * @file
 * Unit tests for the bit-packed GF(2) vector.
 */

#include <gtest/gtest.h>

#include "common/bitvec.h"
#include "common/rng.h"

namespace cyclone {
namespace {

TEST(BitVec, StartsAllZero)
{
    BitVec v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetGetFlip)
{
    BitVec v(70);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(69, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(69));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);
    v.flip(0);
    EXPECT_FALSE(v.get(0));
    v.flip(1);
    EXPECT_TRUE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, SetFalseClears)
{
    BitVec v(10);
    v.set(5, true);
    v.set(5, false);
    EXPECT_FALSE(v.get(5));
    EXPECT_TRUE(v.isZero());
}

TEST(BitVec, XorIsSelfInverse)
{
    Rng rng(7);
    BitVec a(200), b(200);
    for (size_t i = 0; i < 200; ++i) {
        a.set(i, rng.bernoulli(0.5));
        b.set(i, rng.bernoulli(0.5));
    }
    BitVec c = a;
    c ^= b;
    c ^= b;
    EXPECT_EQ(c, a);
}

TEST(BitVec, XorMatchesOperator)
{
    BitVec a(65), b(65);
    a.set(1, true);
    a.set(64, true);
    b.set(1, true);
    b.set(2, true);
    BitVec c = a ^ b;
    EXPECT_FALSE(c.get(1));
    EXPECT_TRUE(c.get(2));
    EXPECT_TRUE(c.get(64));
    EXPECT_EQ(c.popcount(), 2u);
}

TEST(BitVec, AndMasks)
{
    BitVec a(10), b(10);
    a.set(3, true);
    a.set(4, true);
    b.set(4, true);
    b.set(5, true);
    a &= b;
    EXPECT_EQ(a.popcount(), 1u);
    EXPECT_TRUE(a.get(4));
}

TEST(BitVec, DotParity)
{
    BitVec a(130), b(130);
    a.set(0, true);
    a.set(128, true);
    b.set(0, true);
    EXPECT_TRUE(a.dotParity(b));
    b.set(128, true);
    EXPECT_FALSE(a.dotParity(b));
}

TEST(BitVec, OnesPositionsSorted)
{
    BitVec v(150);
    v.set(149, true);
    v.set(0, true);
    v.set(64, true);
    auto ones = v.onesPositions();
    ASSERT_EQ(ones.size(), 3u);
    EXPECT_EQ(ones[0], 0u);
    EXPECT_EQ(ones[1], 64u);
    EXPECT_EQ(ones[2], 149u);
}

TEST(BitVec, ResizeMasksStaleBits)
{
    BitVec v(10);
    for (size_t i = 0; i < 10; ++i)
        v.set(i, true);
    v.resize(4);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v.popcount(), 4u);
    v.resize(10);
    // Bits 4..9 must have been cleared by the shrink.
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, ClearKeepsLength)
{
    BitVec v(77);
    v.set(3, true);
    v.clear();
    EXPECT_EQ(v.size(), 77u);
    EXPECT_TRUE(v.isZero());
}

TEST(BitVec, EqualityAndHash)
{
    BitVec a(64), b(64);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    a.set(13, true);
    EXPECT_NE(a, b);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, HashDependsOnLength)
{
    BitVec a(64), b(65);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, ToString)
{
    BitVec v(5);
    v.set(1, true);
    v.set(4, true);
    EXPECT_EQ(v.toString(), "01001");
}

class BitVecSizes : public ::testing::TestWithParam<size_t>
{};

TEST_P(BitVecSizes, PopcountMatchesNaive)
{
    const size_t n = GetParam();
    Rng rng(n * 977 + 3);
    BitVec v(n);
    size_t expected = 0;
    for (size_t i = 0; i < n; ++i) {
        const bool bit = rng.bernoulli(0.37);
        v.set(i, bit);
        expected += bit;
    }
    EXPECT_EQ(v.popcount(), expected);
    EXPECT_EQ(v.onesPositions().size(), expected);
}

TEST_P(BitVecSizes, DotParityMatchesNaive)
{
    const size_t n = GetParam();
    Rng rng(n * 31 + 5);
    BitVec a(n), b(n);
    bool expected = false;
    for (size_t i = 0; i < n; ++i) {
        const bool ba = rng.bernoulli(0.5);
        const bool bb = rng.bernoulli(0.5);
        a.set(i, ba);
        b.set(i, bb);
        expected ^= ba && bb;
    }
    EXPECT_EQ(a.dotParity(b), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitVecSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128,
                                           129, 500, 1024, 4097));

} // namespace
} // namespace cyclone
