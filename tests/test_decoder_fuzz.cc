/**
 * @file
 * Differential fuzz harness for the whole decode stack, plus the OSD
 * edge-case unit tests.
 *
 * The batched pipeline's contract is that every fast path — the
 * scalar-core batch, the lane-parallel wave kernel, and the batched
 * OSD stage — is bit-identical to per-shot decoding. Instead of
 * hand-building a case per feature, the fuzzer generates random small
 * DEMs (varied detector/mechanism counts, ragged degrees, duplicate
 * columns, zero-weight detectors) and random shot sets (error-pattern
 * shots plus adversarial raw syndromes that may leave the DEM column
 * span), then asserts exact prediction and statistics equality across
 * all four decode paths for both BP variants.
 *
 * CI runs a fixed seed set; set CYCLONE_FUZZ_ITERS to a larger count
 * for deeper local runs (each iteration is one random DEM + shot set
 * per BP variant).
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "decoder/bposd_decoder.h"
#include "decoder/decoder_backend.h"
#include "decoder/osd.h"
#include "decoder/stream_decoder.h"
#include "dem/dem.h"
#include "dem/shot_batch.h"

namespace cyclone {
namespace {

/** Set (or, with nullptr, unset) an env var for one scope. */
class EnvGuard
{
  public:
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        const char* prev = std::getenv(name);
        had_ = prev != nullptr;
        if (had_)
            old_ = prev;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

size_t
fuzzIterations()
{
    const char* env = std::getenv("CYCLONE_FUZZ_ITERS");
    if (env != nullptr && env[0] != '\0') {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<size_t>(parsed);
    }
    return 24;
}

/** Random small DEM: ragged degrees, duplicate columns, detectors no
 *  mechanism touches, undetectable mechanisms. */
DetectorErrorModel
randomDem(Rng& rng)
{
    DetectorErrorModel dem;
    dem.numDetectors = rng.below(25);       // 0..24, zero included
    dem.numObservables = 1 + rng.below(3);  // 1..3
    const size_t mechs = 1 + rng.below(48); // 1..48
    for (size_t m = 0; m < mechs; ++m) {
        DemMechanism mech;
        mech.probability = 0.01 + 0.34 * (rng.below(1000) / 1000.0);
        if (!dem.mechanisms.empty() && rng.below(10) < 3) {
            // Duplicate column: same detectors as an earlier
            // mechanism (possibly different observables), so H is
            // rank-deficient in a way OSD must handle.
            const size_t src = rng.below(dem.mechanisms.size());
            mech.detectors = dem.mechanisms[src].detectors;
        } else if (dem.numDetectors > 0) {
            const size_t degree = rng.below(5); // 0..4, ragged
            for (size_t d = 0; d < degree; ++d) {
                const uint32_t det = static_cast<uint32_t>(
                    rng.below(dem.numDetectors));
                bool seen = false;
                for (uint32_t existing : mech.detectors)
                    seen = seen || existing == det;
                if (!seen)
                    mech.detectors.push_back(det);
            }
        }
        mech.observables = rng.next() &
            ((uint64_t(1) << dem.numObservables) - 1);
        dem.mechanisms.push_back(std::move(mech));
    }
    return dem;
}

/** Random shots: half error patterns (in-span syndromes), half raw
 *  random detector sets that may be outside the DEM column span. */
ShotBatch
randomShots(const DetectorErrorModel& dem, size_t shots, Rng& rng)
{
    ShotBatch batch;
    batch.reset(dem.numDetectors, shots);
    for (size_t s = 0; s < shots; ++s) {
        if (rng.below(2) == 0) {
            const size_t faults = rng.below(5);
            for (size_t f = 0; f < faults; ++f) {
                const DemMechanism& mech =
                    dem.mechanisms[rng.below(dem.mechanisms.size())];
                for (uint32_t d : mech.detectors)
                    batch.flipDetector(s, d);
            }
        } else {
            for (size_t d = 0; d < dem.numDetectors; ++d) {
                if (rng.below(8) == 0)
                    batch.flipDetector(s, d);
            }
        }
    }
    return batch;
}

/** The per-shot outcome counters that memo replay must preserve. */
void
expectReplayedStatsEqual(const BpOsdStats& got, const BpOsdStats& want,
                         const std::string& label)
{
    EXPECT_EQ(got.decodes, want.decodes) << label;
    EXPECT_EQ(got.bpConverged, want.bpConverged) << label;
    EXPECT_EQ(got.osdInvocations, want.osdInvocations) << label;
    EXPECT_EQ(got.osdFailures, want.osdFailures) << label;
    EXPECT_EQ(got.trivialShots, want.trivialShots) << label;
    EXPECT_EQ(got.bpIterations, want.bpIterations) << label;
}

TEST(DecoderFuzz, AllFourPathsBitExactOnRandomDems)
{
    const size_t iters = fuzzIterations();
    for (size_t iter = 0; iter < iters; ++iter) {
        for (const auto variant : {BpOptions::Variant::MinSum,
                                   BpOptions::Variant::ProductSum}) {
            Rng rng(0xf0220000ULL + iter * 2 +
                    (variant == BpOptions::Variant::MinSum ? 0 : 1));
            const DetectorErrorModel dem = randomDem(rng);
            const size_t shots = 1 + rng.below(180);
            const ShotBatch batch = randomShots(dem, shots, rng);

            BpOptions bp;
            bp.variant = variant;
            // Starve BP often so the OSD stage is exercised hard.
            bp.maxIterations = 1 + rng.below(12);

            const std::string label = "iter=" + std::to_string(iter) +
                " variant=" +
                (variant == BpOptions::Variant::MinSum ? "ms" : "ps") +
                " shots=" + std::to_string(shots) +
                " det=" + std::to_string(dem.numDetectors) +
                " mechs=" + std::to_string(dem.mechanisms.size());

            // Path 1: per-shot scalar decoding (the reference).
            BpOptions scalarBp = bp;
            scalarBp.waveLanes = 1;
            BpOsdDecoder scalar(dem, scalarBp);
            std::vector<uint64_t> expected(shots);
            for (size_t s = 0; s < shots; ++s)
                expected[s] = scalar.decode(batch.syndromeOf(s));
            const BpOsdStats want = scalar.stats();

            struct PathSpec
            {
                const char* name;
                size_t waveLanes;
                bool osdBatch;
            };
            const PathSpec paths[] = {
                {"batch", 1, false},
                {"wave", 0, false},
                {"wave+batched-osd", 0, true},
            };
            size_t batchMemoHits = 0;
            for (const PathSpec& path : paths) {
                BpOptions pathBp = bp;
                pathBp.waveLanes = path.waveLanes;
                pathBp.osdBatch = path.osdBatch;
                BpOsdDecoder decoder(dem, pathBp);
                std::vector<uint64_t> got;
                decoder.decodeBatch(batch, got);
                ASSERT_EQ(got.size(), shots) << label;
                for (size_t s = 0; s < shots; ++s)
                    ASSERT_EQ(got[s], expected[s])
                        << label << " path=" << path.name
                        << " s=" << s;
                expectReplayedStatsEqual(
                    decoder.stats(), want,
                    label + " path=" + path.name);
                // All batch paths share the same memo grouping.
                if (path.waveLanes == 1)
                    batchMemoHits = decoder.stats().memoHits;
                else
                    EXPECT_EQ(decoder.stats().memoHits, batchMemoHits)
                        << label << " path=" << path.name;
            }

            // Path 4 (x N): every supported SIMD-ladder rung, forced
            // through the dispatch override, full pipeline. The rung
            // must change nothing — not one bit, not one counter.
            for (const DecoderBackend* b : decoderBackendRegistry()) {
                if (b->kernels == nullptr || !b->supported())
                    continue;
                EnvGuard guard(kWaveBackendEnv, b->name);
                BpOptions pathBp = bp;
                pathBp.waveLanes = 0;
                pathBp.osdBatch = true;
                BpOsdDecoder decoder(dem, pathBp);
                ASSERT_STREQ(decoder.backendName(), b->name) << label;
                std::vector<uint64_t> got;
                decoder.decodeBatch(batch, got);
                for (size_t s = 0; s < shots; ++s)
                    ASSERT_EQ(got[s], expected[s])
                        << label << " backend=" << b->name
                        << " s=" << s;
                expectReplayedStatsEqual(
                    decoder.stats(), want,
                    label + " backend=" + b->name);
                EXPECT_EQ(decoder.stats().memoHits, batchMemoHits)
                    << label << " backend=" << b->name;
            }

            // Path 5: the staged pool — the same batch staged twice
            // into one group must replay the exact outcome (and
            // per-shot statistics) onto both copies.
            {
                BpOptions pathBp = bp;
                pathBp.waveLanes = 0;
                pathBp.osdBatch = true;
                BpOsdDecoder staged(dem, pathBp);
                staged.beginStaged();
                staged.stageBatch(batch);
                staged.stageBatch(batch);
                staged.flushStaged();
                for (size_t copy = 0; copy < 2; ++copy) {
                    const size_t base = staged.stagedBatchOffset(copy);
                    for (size_t s = 0; s < shots; ++s)
                        ASSERT_EQ(
                            staged.stagedPredictions()[base + s],
                            expected[s])
                            << label << " staged copy=" << copy
                            << " s=" << s;
                }
                const BpOsdStats& st = staged.stats();
                EXPECT_EQ(st.decodes, want.decodes * 2) << label;
                EXPECT_EQ(st.bpConverged, want.bpConverged * 2)
                    << label;
                EXPECT_EQ(st.osdInvocations, want.osdInvocations * 2)
                    << label;
                EXPECT_EQ(st.osdFailures, want.osdFailures * 2)
                    << label;
                EXPECT_EQ(st.trivialShots, want.trivialShots * 2)
                    << label;
                EXPECT_EQ(st.bpIterations, want.bpIterations * 2)
                    << label;
                EXPECT_EQ(st.stagedChunks, 1u) << label;
            }
        }
    }
}

TEST(DecoderFuzz, StreamedWindowsBitExactOffline)
{
    // The streaming front-end regroups windows across streams and
    // flush boundaries; every committed correction must equal the
    // offline batch decode of the same syndrome, for random DEMs,
    // stream counts, window round counts, ragged totals and both
    // flush policies.
    const size_t iters = fuzzIterations();
    for (size_t iter = 0; iter < iters; ++iter) {
        Rng rng(0x57e3a00ULL + iter);
        const DetectorErrorModel dem = randomDem(rng);
        const size_t shots = 1 + rng.below(300);
        const ShotBatch batch = randomShots(dem, shots, rng);

        BpOptions bp;
        bp.maxIterations = 1 + rng.below(12);
        BpOsdDecoder reference(dem, bp);
        std::vector<uint64_t> expected;
        reference.decodeBatch(batch, expected);

        const size_t S = 1 + rng.below(16);
        const size_t R = 1 + rng.below(5);
        const bool deadline = rng.below(2) == 0;
        const std::string label = "iter=" + std::to_string(iter) +
            " shots=" + std::to_string(shots) +
            " S=" + std::to_string(S) + " R=" + std::to_string(R) +
            (deadline ? " deadline" : " full-wave");

        double clockUs = 0.0;
        BpOsdDecoder decoder(dem, bp);
        StreamDecoderOptions options;
        options.streams = S;
        options.roundsPerWindow = R;
        options.capacityChunks = 1 + rng.below(3);
        options.policy = deadline ? FlushPolicy::Deadline
                                  : FlushPolicy::FullWave;
        options.deadlineUs = 50.0;
        options.flushAfterUs = deadline ? 5.0 + rng.below(40) : 0.0;
        options.nowUs = [&clockUs] { return clockUs; };
        StreamDecoder stream(decoder, dem.numDetectors, options);

        const size_t windows = (shots + S - 1) / S;
        size_t committedSeen = 0;
        for (size_t w = 0; w < windows; ++w) {
            for (size_t r = 0; r < R; ++r) {
                for (size_t s = 0; s < S; ++s) {
                    const size_t flat = w * S + s;
                    if (flat < shots)
                        stream.pushRound(s, batch.syndromeOf(flat));
                }
                clockUs += 1.0 + rng.below(20);
                stream.poll();
            }
        }
        stream.finish();

        ASSERT_EQ(stream.committed().size(), shots) << label;
        std::vector<bool> seen(shots, false);
        for (const CommittedWindow& c : stream.committed()) {
            const size_t flat = c.windowIndex * S + c.stream;
            ASSERT_LT(flat, shots) << label;
            ASSERT_FALSE(seen[flat]) << label << " flat=" << flat;
            seen[flat] = true;
            ASSERT_EQ(c.prediction, expected[flat])
                << label << " flat=" << flat;
            ++committedSeen;
        }
        EXPECT_EQ(committedSeen, shots) << label;
        EXPECT_EQ(stream.stats().windows, shots) << label;
        EXPECT_EQ(stream.stats().roundsPushed, shots * R) << label;
    }
}

TEST(DecoderFuzz, DirectSolveBatchMatchesScalarOsd)
{
    // solveBatch head-to-head against decode() on BP posteriors,
    // including shot counts above the 64-per-word RHS chunk size.
    const size_t iters = fuzzIterations();
    for (size_t iter = 0; iter < iters; ++iter) {
        Rng rng(0xd07b47c8ULL + iter);
        const DetectorErrorModel dem = randomDem(rng);
        const size_t shots = 1 + rng.below(90);
        const ShotBatch batch = randomShots(dem, shots, rng);

        BpOptions bp;
        bp.maxIterations = 1 + rng.below(6);
        BpDecoder bpDecoder(dem, bp);

        std::vector<BitVec> syndromes;
        std::vector<std::vector<float>> posteriors;
        for (size_t s = 0; s < shots; ++s) {
            const BitVec syndrome = batch.syndromeOf(s);
            bpDecoder.decode(syndrome);
            syndromes.push_back(syndrome);
            posteriors.push_back(bpDecoder.posteriorLlr());
        }

        std::vector<OsdShotRequest> requests(shots);
        for (size_t s = 0; s < shots; ++s) {
            requests[s].syndrome = &syndromes[s];
            requests[s].posteriorLlr = posteriors[s].data();
        }
        OsdDecoder batchOsd(dem);
        OsdBatchResult result;
        batchOsd.solveBatch(requests.data(), shots, result);

        OsdDecoder scalarOsd(dem);
        std::vector<uint8_t> errors;
        for (size_t s = 0; s < shots; ++s) {
            const bool ok =
                scalarOsd.decode(syndromes[s], posteriors[s], errors);
            ASSERT_EQ(result.ok[s] != 0, ok) << "iter=" << iter
                                             << " s=" << s;
            if (!ok)
                continue;
            std::vector<uint8_t> batchErrors(dem.mechanisms.size(), 0);
            for (size_t f = result.flipOffsets[s];
                 f < result.flipOffsets[s + 1]; ++f)
                batchErrors[result.flips[f]] = 1;
            ASSERT_EQ(batchErrors, errors) << "iter=" << iter
                                           << " s=" << s;
        }
    }
}

// --------------------------------------------------------------------
// OSD edge cases.
// --------------------------------------------------------------------

/** Repetition-code DEM (chain of detectors, full-rank H). */
DetectorErrorModel
chainDem(size_t n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n - 1;
    dem.numObservables = 1;
    for (size_t i = 0; i < n; ++i) {
        DemMechanism m;
        m.probability = p;
        if (i > 0)
            m.detectors.push_back(static_cast<uint32_t>(i - 1));
        if (i < n - 1)
            m.detectors.push_back(static_cast<uint32_t>(i));
        m.observables = i == n - 1 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    return dem;
}

TEST(OsdBatch, AllConvergedGroupNeverInvokesOsd)
{
    // Single-fault syndromes on a chain: BP converges on every shot,
    // so the batched OSD stage must never run.
    const DetectorErrorModel dem = chainDem(8, 0.05);
    ShotBatch batch;
    batch.reset(dem.numDetectors, 40);
    for (size_t s = 0; s < 40; ++s) {
        for (uint32_t d :
             dem.mechanisms[s % dem.mechanisms.size()].detectors)
            batch.flipDetector(s, d);
    }
    BpOsdDecoder decoder(dem);
    std::vector<uint64_t> predicted;
    decoder.decodeBatch(batch, predicted);
    EXPECT_EQ(decoder.stats().bpConverged, decoder.stats().decodes);
    EXPECT_EQ(decoder.stats().osdInvocations, 0u);
    EXPECT_EQ(decoder.stats().osdBatchGroups, 0u);
    EXPECT_EQ(decoder.stats().osdSharedPivots, 0u);
}

TEST(OsdBatch, RankDeficientAndOutOfSpanSyndromes)
{
    // Detector 4 is touched by no mechanism, and two columns repeat:
    // H is rank-deficient and syndromes with bit 4 set sit outside
    // the column span. Batch must agree with scalar on predictions
    // and on the osdFailures accounting.
    DetectorErrorModel dem;
    dem.numDetectors = 5;
    dem.numObservables = 1;
    dem.mechanisms.push_back({0.1, {0, 1}, 1});
    dem.mechanisms.push_back({0.1, {1, 2}, 0});
    dem.mechanisms.push_back({0.1, {0, 1}, 0}); // duplicate of [0]
    dem.mechanisms.push_back({0.1, {2, 3}, 1});
    dem.mechanisms.push_back({0.1, {3}, 0});

    BpOptions bp;
    bp.maxIterations = 1; // starve BP so OSD always runs
    const size_t shots = 24;
    ShotBatch batch;
    batch.reset(dem.numDetectors, shots);
    for (size_t s = 0; s < shots; ++s) {
        if (s % 3 == 0)
            batch.flipDetector(s, 4); // out of span
        batch.flipDetector(s, s % 4);
        if (s % 2 == 0)
            batch.flipDetector(s, (s + 1) % 4);
    }

    BpOptions scalarBp = bp;
    scalarBp.waveLanes = 1;
    BpOsdDecoder scalar(dem, scalarBp);
    std::vector<uint64_t> expected(shots);
    for (size_t s = 0; s < shots; ++s)
        expected[s] = scalar.decode(batch.syndromeOf(s));
    ASSERT_GT(scalar.stats().osdFailures, 0u);
    ASSERT_GT(scalar.stats().osdInvocations, 0u);

    BpOsdDecoder decoder(dem, bp);
    std::vector<uint64_t> got;
    decoder.decodeBatch(batch, got);
    for (size_t s = 0; s < shots; ++s)
        EXPECT_EQ(got[s], expected[s]) << "s=" << s;
    expectReplayedStatsEqual(decoder.stats(), scalar.stats(),
                             "rank-deficient");
}

TEST(OsdBatch, SingletonGroupDegeneratesToScalar)
{
    const DetectorErrorModel dem = chainDem(10, 0.1);
    BpOptions bp;
    bp.maxIterations = 1;
    BpDecoder bpDecoder(dem, bp);
    BitVec syndrome(dem.numDetectors);
    syndrome.set(2, true);
    syndrome.set(5, true);
    bpDecoder.decode(syndrome);
    const std::vector<float> posterior = bpDecoder.posteriorLlr();

    OsdShotRequest request;
    request.syndrome = &syndrome;
    request.posteriorLlr = posterior.data();
    OsdDecoder batchOsd(dem);
    OsdBatchResult result;
    batchOsd.solveBatch(&request, 1, result);
    EXPECT_EQ(result.stats.groups, 1u);
    EXPECT_EQ(result.stats.groupedShots, 0u);
    EXPECT_EQ(result.stats.sharedPivots, 0u);

    OsdDecoder scalarOsd(dem);
    std::vector<uint8_t> errors;
    ASSERT_TRUE(scalarOsd.decode(syndrome, posterior, errors));
    ASSERT_EQ(result.ok[0], 1u);
    std::vector<uint8_t> batchErrors(dem.mechanisms.size(), 0);
    for (size_t f = result.flipOffsets[0]; f < result.flipOffsets[1];
         ++f)
        batchErrors[result.flips[f]] = 1;
    EXPECT_EQ(batchErrors, errors);
    EXPECT_EQ(batchOsd.discoveredRank(), scalarOsd.discoveredRank());
}

TEST(OsdBatch, SharedOrderingPrefixGroupsAcrossSyndromes)
{
    // Shots with the same posterior but different syndromes share the
    // whole reliability permutation, so one elimination must serve
    // the entire batch — including the >64-shot RHS chunking path.
    const DetectorErrorModel dem = chainDem(12, 0.1);
    const size_t shots = 70;
    std::vector<float> posterior(dem.mechanisms.size());
    for (size_t v = 0; v < posterior.size(); ++v)
        posterior[v] = 0.25f * static_cast<float>((v * 7) % 13) - 1.0f;

    std::vector<BitVec> syndromes;
    for (size_t s = 0; s < shots; ++s) {
        BitVec syndrome(dem.numDetectors);
        syndrome.set(s % dem.numDetectors, true);
        if (s % 2 == 0)
            syndrome.set((s + 3) % dem.numDetectors, true);
        syndromes.push_back(std::move(syndrome));
    }
    std::vector<OsdShotRequest> requests(shots);
    for (size_t s = 0; s < shots; ++s) {
        requests[s].syndrome = &syndromes[s];
        requests[s].posteriorLlr = posterior.data();
    }

    OsdDecoder batchOsd(dem);
    OsdBatchResult result;
    batchOsd.solveBatch(requests.data(), shots, result);
    EXPECT_EQ(result.stats.groups, 1u);
    EXPECT_EQ(result.stats.groupedShots, shots - 1);
    EXPECT_EQ(result.stats.sharedPivots,
              batchOsd.discoveredRank() * (shots - 1));

    OsdDecoder scalarOsd(dem);
    std::vector<uint8_t> errors;
    for (size_t s = 0; s < shots; ++s) {
        ASSERT_TRUE(scalarOsd.decode(syndromes[s], posterior, errors))
            << "s=" << s;
        ASSERT_EQ(result.ok[s], 1u) << "s=" << s;
        std::vector<uint8_t> batchErrors(dem.mechanisms.size(), 0);
        for (size_t f = result.flipOffsets[s];
             f < result.flipOffsets[s + 1]; ++f)
            batchErrors[result.flips[f]] = 1;
        ASSERT_EQ(batchErrors, errors) << "s=" << s;
    }
}

TEST(OsdBatch, ReliabilityTiesAtThePivotBoundary)
{
    // An all-ties posterior makes the reliability order pure index
    // order, putting equal keys on both sides of every pivot/reject
    // decision; and a batch with one differing shot must split into
    // two groups rather than share the wrong elimination.
    const DetectorErrorModel dem = chainDem(9, 0.1);
    std::vector<float> tied(dem.mechanisms.size(), 0.5f);
    std::vector<float> nudged = tied;
    nudged[3] = 0.4999f; // reorders the prefix for the second shot

    BitVec sa(dem.numDetectors);
    sa.set(1, true);
    BitVec sb(dem.numDetectors);
    sb.set(4, true);
    OsdShotRequest requests[2];
    requests[0].syndrome = &sa;
    requests[0].posteriorLlr = tied.data();
    requests[1].syndrome = &sb;
    requests[1].posteriorLlr = nudged.data();

    OsdDecoder batchOsd(dem);
    OsdBatchResult result;
    batchOsd.solveBatch(requests, 2, result);
    EXPECT_EQ(result.stats.groups, 2u);
    // The second leader differs from the first by one key, so its
    // reliability order comes from the incremental re-rank path.
    EXPECT_EQ(result.stats.incrementalSorts, 1u);

    OsdDecoder scalarOsd(dem);
    std::vector<uint8_t> errors;
    const std::vector<float>* posteriors[2] = {&tied, &nudged};
    const BitVec* syndromes[2] = {&sa, &sb};
    for (size_t s = 0; s < 2; ++s) {
        ASSERT_TRUE(scalarOsd.decode(*syndromes[s], *posteriors[s],
                                     errors));
        ASSERT_EQ(result.ok[s], 1u);
        std::vector<uint8_t> batchErrors(dem.mechanisms.size(), 0);
        for (size_t f = result.flipOffsets[s];
             f < result.flipOffsets[s + 1]; ++f)
            batchErrors[result.flips[f]] = 1;
        EXPECT_EQ(batchErrors, errors) << "s=" << s;
    }
}

TEST(OsdBatch, IncrementalReliabilitySortMatchesFreshDecoder)
{
    // A persistent decoder re-ranks only the posteriors whose sort key
    // changed since the previous solve. Every step must produce the
    // exact flips a fresh decoder (full radix sort) produces — across
    // sign flips, signed-zero transitions, and duplicate LLRs — and
    // the incremental counter must fire exactly when the diff path is
    // taken.
    const DetectorErrorModel dem = chainDem(14, 0.1);
    const size_t n = dem.mechanisms.size();
    ASSERT_GE(n, 10u);

    std::vector<float> base(n);
    for (size_t v = 0; v < n; ++v)
        base[v] = 0.25f * static_cast<float>((v * 5) % 7) - 0.5f;
    base[2] = 0.0f;
    base[5] = -0.0f;   // same key as index 2's +0.0: tie broken by index
    base[9] = base[3]; // duplicate LLR

    std::vector<std::vector<float>> steps;
    steps.push_back(base);
    auto p1 = base;
    p1[4] = -p1[4] - 0.125f; // one key moves
    steps.push_back(p1);
    auto p2 = p1;
    p2[5] = 0.0f; // -0.0 -> +0.0: sort key is unchanged
    steps.push_back(p2);
    auto p3 = p2;
    p3[7] = p3[3]; // a third copy of the duplicated LLR
    steps.push_back(p3);
    auto p4 = p3;
    for (size_t v = 0; v < n; ++v)
        p4[v] += 1.0f; // majority change: falls back to a full rebuild
    steps.push_back(p4);

    // full sort, incremental, empty diff, incremental, full rebuild
    const size_t expectIncremental[] = {0, 1, 0, 1, 0};

    BitVec syndrome(dem.numDetectors);
    syndrome.set(3, true);
    syndrome.set(8, true);

    OsdDecoder persistent(dem);
    for (size_t i = 0; i < steps.size(); ++i) {
        OsdShotRequest request;
        request.syndrome = &syndrome;
        request.posteriorLlr = steps[i].data();

        OsdBatchResult got;
        persistent.solveBatch(&request, 1, got);
        EXPECT_EQ(got.stats.incrementalSorts, expectIncremental[i])
            << "step=" << i;

        OsdDecoder fresh(dem);
        OsdBatchResult want;
        fresh.solveBatch(&request, 1, want);
        ASSERT_EQ(got.ok, want.ok) << "step=" << i;
        ASSERT_EQ(got.flipOffsets, want.flipOffsets) << "step=" << i;
        ASSERT_EQ(got.flips, want.flips) << "step=" << i;
        EXPECT_EQ(persistent.discoveredRank(), fresh.discoveredRank())
            << "step=" << i;
    }
}

TEST(OsdBatch, IncrementalSortSurvivesRandomPerturbationSequences)
{
    // Long random walks over a persistent decoder: each step perturbs
    // a random subset of posteriors (including exact ties with other
    // entries and sign flips through zero) and must stay bit-exact
    // with a fresh full sort.
    const DetectorErrorModel dem = chainDem(11, 0.1);
    const size_t n = dem.mechanisms.size();
    Rng rng(0x05eed5u);

    std::vector<float> llr(n);
    for (size_t v = 0; v < n; ++v)
        llr[v] = 0.125f * static_cast<float>(rng.next() % 33) - 2.0f;

    OsdDecoder persistent(dem);
    size_t incrementalSeen = 0;
    const size_t rounds = fuzzIterations();
    for (size_t round = 0; round < rounds; ++round) {
        const size_t touches = rng.next() % (n / 2);
        for (size_t t = 0; t < touches; ++t) {
            const size_t v = rng.next() % n;
            switch (rng.next() % 4) {
            case 0:
                llr[v] = llr[rng.next() % n]; // exact tie
                break;
            case 1:
                llr[v] = -llr[v]; // sign flip (and -0.0 <-> +0.0)
                break;
            case 2:
                llr[v] = 0.125f * static_cast<float>(rng.next() % 33) -
                         2.0f;
                break;
            default:
                break; // rewrite with the identical value
            }
        }
        BitVec syndrome(dem.numDetectors);
        for (size_t d = 0; d < dem.numDetectors; ++d)
            syndrome.set(d, (rng.next() & 1) != 0);

        OsdShotRequest request;
        request.syndrome = &syndrome;
        request.posteriorLlr = llr.data();

        OsdBatchResult got;
        persistent.solveBatch(&request, 1, got);
        incrementalSeen += got.stats.incrementalSorts;

        OsdDecoder fresh(dem);
        OsdBatchResult want;
        fresh.solveBatch(&request, 1, want);
        ASSERT_EQ(got.ok, want.ok) << "round=" << round;
        ASSERT_EQ(got.flipOffsets, want.flipOffsets)
            << "round=" << round;
        ASSERT_EQ(got.flips, want.flips) << "round=" << round;
    }
    EXPECT_GT(incrementalSeen, 0u);
}

} // namespace
} // namespace cyclone
