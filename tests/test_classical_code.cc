/**
 * @file
 * Tests for classical linear codes and the LDPC seed search.
 */

#include <gtest/gtest.h>

#include "qec/classical_code.h"

namespace cyclone {
namespace {

class RepetitionSweep : public ::testing::TestWithParam<size_t>
{};

TEST_P(RepetitionSweep, Parameters)
{
    const size_t n = GetParam();
    ClassicalCode code = ClassicalCode::repetition(n);
    EXPECT_EQ(code.length(), n);
    EXPECT_EQ(code.dimension(), 1u);
    EXPECT_EQ(code.checks(), n - 1);
    EXPECT_TRUE(code.fullRank());
    EXPECT_EQ(code.distance(), n);
}

TEST_P(RepetitionSweep, AllOnesIsCodeword)
{
    const size_t n = GetParam();
    ClassicalCode code = ClassicalCode::repetition(n);
    BitVec ones(n);
    for (size_t i = 0; i < n; ++i)
        ones.set(i, true);
    EXPECT_TRUE(code.isCodeword(ones));
    BitVec one_hot(n);
    one_hot.set(0, true);
    EXPECT_FALSE(code.isCodeword(one_hot));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RepetitionSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

TEST(Hamming, Parameters)
{
    ClassicalCode code = ClassicalCode::hamming(3);
    EXPECT_EQ(code.length(), 7u);
    EXPECT_EQ(code.dimension(), 4u);
    EXPECT_EQ(code.distance(), 3u);
    EXPECT_TRUE(code.fullRank());

    ClassicalCode code4 = ClassicalCode::hamming(4);
    EXPECT_EQ(code4.length(), 15u);
    EXPECT_EQ(code4.dimension(), 11u);
    EXPECT_EQ(code4.distance(), 3u);
}

struct SeedSpec
{
    size_t n, k, d, col_weight;
};

class SeedSearch : public ::testing::TestWithParam<SeedSpec>
{};

TEST_P(SeedSearch, FindsCodeWithExactParameters)
{
    const SeedSpec spec = GetParam();
    auto code = ClassicalCode::searchLdpc(spec.n, spec.k, spec.d,
                                          spec.col_weight, 1);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(code->length(), spec.n);
    EXPECT_EQ(code->dimension(), spec.k);
    EXPECT_EQ(code->distance(), spec.d);
    EXPECT_TRUE(code->fullRank());
    // Column weight is exactly col_weight by construction.
    const GF2Matrix& h = code->parityCheck();
    GF2Matrix ht = h.transposed();
    for (size_t c = 0; c < spec.n; ++c)
        EXPECT_EQ(ht.row(c).popcount(), spec.col_weight);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSeeds, SeedSearch,
    ::testing::Values(SeedSpec{12, 3, 6, 3}, SeedSpec{16, 4, 6, 3},
                      SeedSpec{20, 5, 8, 3}));

TEST(SeedSearch, ImpossibleParametersReturnNullopt)
{
    // d > n - k + 1 violates the Singleton bound.
    auto code = ClassicalCode::searchLdpc(8, 2, 8, 3, 1, 50);
    EXPECT_FALSE(code.has_value());
}

TEST(SeedSearch, Deterministic)
{
    auto a = ClassicalCode::searchLdpc(12, 3, 6, 3, 1);
    auto b = ClassicalCode::searchLdpc(12, 3, 6, 3, 1);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->parityCheck(), b->parityCheck());
}

TEST(ClassicalCode, DistanceOfHammingDual)
{
    // The [7,3] dual (simplex) code has all nonzero weights 4.
    ClassicalCode hamming = ClassicalCode::hamming(3);
    // Dual parity check = Hamming generator; build via nullspace.
    GF2Matrix h = hamming.parityCheck();
    auto basis = h.nullspaceBasis();
    GF2Matrix g(0, 7);
    for (const auto& v : basis)
        g.appendRow(v);
    ClassicalCode simplex(g, "simplex");
    EXPECT_EQ(simplex.dimension(), 3u);
    EXPECT_EQ(simplex.distance(), 4u);
}

} // namespace
} // namespace cyclone
