/**
 * @file
 * Unit and property tests for GF(2) linear algebra.
 */

#include <gtest/gtest.h>

#include "common/gf2.h"
#include "common/rng.h"

namespace cyclone {
namespace {

GF2Matrix
randomMatrix(size_t rows, size_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    GF2Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c)
            m.set(r, c, rng.bernoulli(density));
    }
    return m;
}

TEST(GF2Matrix, IdentityProperties)
{
    GF2Matrix id = GF2Matrix::identity(8);
    EXPECT_EQ(id.rank(), 8u);
    EXPECT_TRUE(id.nullspaceBasis().empty());
    GF2Matrix a = randomMatrix(8, 8, 0.4, 3);
    EXPECT_EQ(id.multiply(a), a);
    EXPECT_EQ(a.multiply(id), a);
}

TEST(GF2Matrix, FromRows)
{
    GF2Matrix m = GF2Matrix::fromRows({{1, 0, 1}, {0, 1, 1}}, 3);
    EXPECT_TRUE(m.get(0, 0));
    EXPECT_FALSE(m.get(0, 1));
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_EQ(m.rank(), 2u);
}

TEST(GF2Matrix, TransposeInvolution)
{
    GF2Matrix a = randomMatrix(7, 12, 0.3, 11);
    EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(GF2Matrix, TransposeSwapsIndices)
{
    GF2Matrix a = randomMatrix(5, 9, 0.4, 13);
    GF2Matrix t = a.transposed();
    for (size_t r = 0; r < 5; ++r) {
        for (size_t c = 0; c < 9; ++c)
            EXPECT_EQ(a.get(r, c), t.get(c, r));
    }
}

TEST(GF2Matrix, MultiplyAssociative)
{
    GF2Matrix a = randomMatrix(4, 6, 0.5, 17);
    GF2Matrix b = randomMatrix(6, 5, 0.5, 19);
    GF2Matrix c = randomMatrix(5, 3, 0.5, 23);
    EXPECT_EQ(a.multiply(b).multiply(c), a.multiply(b.multiply(c)));
}

TEST(GF2Matrix, MultiplyVectorMatchesMatrix)
{
    GF2Matrix a = randomMatrix(6, 9, 0.4, 29);
    Rng rng(31);
    BitVec x(9);
    for (size_t i = 0; i < 9; ++i)
        x.set(i, rng.bernoulli(0.5));
    BitVec y = a.multiply(x);
    for (size_t r = 0; r < 6; ++r)
        EXPECT_EQ(y.get(r), a.row(r).dotParity(x));
}

TEST(GF2Matrix, KronDimensions)
{
    GF2Matrix a = randomMatrix(2, 3, 0.6, 37);
    GF2Matrix b = randomMatrix(4, 5, 0.6, 41);
    GF2Matrix k = a.kron(b);
    EXPECT_EQ(k.rows(), 8u);
    EXPECT_EQ(k.cols(), 15u);
}

TEST(GF2Matrix, KronMixedProduct)
{
    // (A kron B)(C kron D) == AC kron BD
    GF2Matrix a = randomMatrix(2, 3, 0.5, 43);
    GF2Matrix b = randomMatrix(2, 2, 0.5, 47);
    GF2Matrix c = randomMatrix(3, 2, 0.5, 53);
    GF2Matrix d = randomMatrix(2, 3, 0.5, 59);
    GF2Matrix lhs = a.kron(b).multiply(c.kron(d));
    GF2Matrix rhs = a.multiply(c).kron(b.multiply(d));
    EXPECT_EQ(lhs, rhs);
}

TEST(GF2Matrix, KronWithIdentityEntries)
{
    GF2Matrix a = randomMatrix(3, 3, 0.5, 61);
    GF2Matrix k = a.kron(GF2Matrix::identity(2));
    for (size_t r = 0; r < 3; ++r) {
        for (size_t c = 0; c < 3; ++c) {
            EXPECT_EQ(k.get(2 * r, 2 * c), a.get(r, c));
            EXPECT_EQ(k.get(2 * r + 1, 2 * c + 1), a.get(r, c));
            EXPECT_FALSE(k.get(2 * r, 2 * c + 1));
        }
    }
}

TEST(GF2Matrix, HstackVstack)
{
    GF2Matrix a = randomMatrix(3, 4, 0.5, 67);
    GF2Matrix b = randomMatrix(3, 2, 0.5, 71);
    GF2Matrix h = a.hstack(b);
    EXPECT_EQ(h.rows(), 3u);
    EXPECT_EQ(h.cols(), 6u);
    EXPECT_EQ(h.get(1, 4), b.get(1, 0));

    GF2Matrix c = randomMatrix(2, 4, 0.5, 73);
    GF2Matrix v = a.vstack(c);
    EXPECT_EQ(v.rows(), 5u);
    EXPECT_EQ(v.get(4, 2), c.get(1, 2));
}

TEST(GF2Matrix, RankBounds)
{
    GF2Matrix a = randomMatrix(6, 10, 0.5, 79);
    EXPECT_LE(a.rank(), 6u);
    GF2Matrix zero(4, 4);
    EXPECT_EQ(zero.rank(), 0u);
    EXPECT_TRUE(zero.isZero());
}

TEST(GF2Matrix, RankOfDuplicatedRows)
{
    GF2Matrix a(4, 5);
    a.set(0, 1, true);
    a.set(0, 3, true);
    a.row(1) = a.row(0);
    a.set(2, 0, true);
    a.row(3) = a.row(0) ^ a.row(2);
    EXPECT_EQ(a.rank(), 2u);
}

class NullspaceSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>>
{};

TEST_P(NullspaceSweep, BasisVectorsAreInKernel)
{
    auto [rows, cols, seed] = GetParam();
    GF2Matrix a = randomMatrix(rows, cols, 0.45, seed);
    auto basis = a.nullspaceBasis();
    EXPECT_EQ(basis.size(), cols - a.rank());
    for (const BitVec& v : basis) {
        EXPECT_TRUE(a.multiply(v).isZero());
        EXPECT_FALSE(v.isZero());
    }
    // Basis must be linearly independent: stacking it has full rank.
    GF2Matrix stack(0, cols);
    for (const BitVec& v : basis)
        stack.appendRow(v);
    EXPECT_EQ(stack.rank(), basis.size());
}

TEST_P(NullspaceSweep, SolveConsistentSystems)
{
    auto [rows, cols, seed] = GetParam();
    GF2Matrix a = randomMatrix(rows, cols, 0.45, seed + 1000);
    Rng rng(seed + 5);
    BitVec x0(cols);
    for (size_t i = 0; i < cols; ++i)
        x0.set(i, rng.bernoulli(0.5));
    BitVec b = a.multiply(x0);
    BitVec x;
    ASSERT_TRUE(a.solve(b, x));
    EXPECT_EQ(a.multiply(x), b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NullspaceSweep,
    ::testing::Values(std::make_tuple(4, 8, 1u),
                      std::make_tuple(8, 8, 2u),
                      std::make_tuple(12, 20, 3u),
                      std::make_tuple(20, 12, 4u),
                      std::make_tuple(30, 65, 5u),
                      std::make_tuple(64, 64, 6u),
                      std::make_tuple(65, 130, 7u)));

TEST(GF2Matrix, SolveDetectsInconsistent)
{
    // x0 + x1 = 0, x0 + x1 = 1 is inconsistent.
    GF2Matrix a = GF2Matrix::fromRows({{1, 1}, {1, 1}}, 2);
    BitVec b(2);
    b.set(1, true);
    BitVec x;
    EXPECT_FALSE(a.solve(b, x));
}

TEST(SparseGF2, DenseRoundTrip)
{
    GF2Matrix a = randomMatrix(9, 14, 0.3, 83);
    EXPECT_EQ(a.toSparse().toDense(), a);
}

TEST(SparseGF2, MultiplyMatchesDense)
{
    GF2Matrix a = randomMatrix(11, 17, 0.3, 89);
    SparseGF2 s = a.toSparse();
    Rng rng(97);
    BitVec x(17);
    for (size_t i = 0; i < 17; ++i)
        x.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(s.multiply(x), a.multiply(x));
}

TEST(SparseGF2, TransposeMatchesDense)
{
    GF2Matrix a = randomMatrix(6, 9, 0.4, 101);
    EXPECT_EQ(a.toSparse().transposed().toDense(), a.transposed());
}

TEST(SparseGF2, WeightsAndSupports)
{
    SparseGF2 s(3, 6);
    s.setRowSupport(0, {5, 1, 1, 3}); // dedup + sort
    s.setRowSupport(1, {0});
    EXPECT_EQ(s.rowSupport(0).size(), 3u);
    EXPECT_EQ(s.rowSupport(0)[0], 1u);
    EXPECT_EQ(s.nnz(), 4u);
    EXPECT_EQ(s.maxRowWeight(), 3u);
    EXPECT_EQ(s.maxColWeight(), 1u);
    auto cols = s.colSupports();
    EXPECT_EQ(cols[1].size(), 1u);
    EXPECT_TRUE(cols[2].empty());
}

} // namespace
} // namespace cyclone
