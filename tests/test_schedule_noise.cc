/**
 * @file
 * Tests for schedule-derived per-qubit idle noise: twirl derivation
 * from the IR, degeneration to the uniform-latency model when idle
 * windows coincide, circuit-builder plumbing, and the noise/config
 * input validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "circuit/memory_circuit.h"
#include "core/codesign.h"
#include "memory/memory_experiment.h"
#include "noise/schedule_noise.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

CssCode
surface13()
{
    return makeHgpCode(ClassicalCode::repetition(3), 3);
}

/** A schedule with one global op: every ion idles the full makespan. */
TimedSchedule
uniformIdleSchedule(size_t num_ions, double makespan_us)
{
    TimedSchedule sched;
    sched.numResources = 1;
    sched.numIons = static_cast<uint32_t>(num_ions);
    TimedOp op;
    op.category = OpCategory::Shuttle;
    op.resource = kNoResource;
    op.startUs = 0.0;
    op.durationUs = makespan_us;
    op.counted = false;
    sched.ops.push_back(op);
    return sched;
}

TEST(ScheduleNoise, TwirlsMeasuredIdleWindows)
{
    TimedSchedule sched;
    sched.numResources = 1;
    sched.numIons = 3;
    // Qubit 0 busy 400 us, qubit 1 idle, makespan 1000 us.
    TimedOp gate;
    gate.category = OpCategory::Gate;
    gate.resource = 0;
    gate.ionA = 0;
    gate.startUs = 0.0;
    gate.durationUs = 400.0;
    sched.ops.push_back(gate);
    TimedOp tail;
    tail.category = OpCategory::Measure;
    tail.resource = 0;
    tail.ionA = 2;
    tail.startUs = 400.0;
    tail.durationUs = 600.0;
    sched.ops.push_back(tail);

    const double p = 1e-3;
    const double t_coh = coherenceTimeSeconds(p);
    const auto twirls = perQubitIdleFromSchedule(sched, 2, p);
    ASSERT_EQ(twirls.size(), 2u);
    const PauliTwirl busy_expect = twirlDecoherence(600.0, t_coh, t_coh);
    const PauliTwirl idle_expect = twirlDecoherence(1000.0, t_coh, t_coh);
    EXPECT_DOUBLE_EQ(twirls[0].px, busy_expect.px);
    EXPECT_DOUBLE_EQ(twirls[0].pz, busy_expect.pz);
    EXPECT_DOUBLE_EQ(twirls[1].px, idle_expect.px);
    EXPECT_GT(twirls[1].total(), twirls[0].total());
}

TEST(ScheduleNoise, LatencyScaleScalesTheWindows)
{
    const TimedSchedule sched = uniformIdleSchedule(4, 2000.0);
    const double p = 1e-3;
    const double t_coh = coherenceTimeSeconds(p);
    const auto half = perQubitIdleFromSchedule(sched, 4, p, 0.5);
    const PauliTwirl expect = twirlDecoherence(1000.0, t_coh, t_coh);
    for (const PauliTwirl& twirl : half) {
        EXPECT_DOUBLE_EQ(twirl.px, expect.px);
        EXPECT_DOUBLE_EQ(twirl.pz, expect.pz);
    }
}

TEST(ScheduleNoise, DegeneratesToUniformModelOnEqualIdle)
{
    // When every data qubit has the same idle window, the per-qubit
    // circuit is the uniform-latency circuit, operation for operation.
    const CssCode code = surface13();
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    const double p = 2e-3;
    const double latency = 50000.0;

    MemoryCircuitOptions uniform;
    uniform.rounds = 3;
    uniform.noise = NoiseModel::withLatency(p, latency);

    MemoryCircuitOptions per_qubit;
    per_qubit.rounds = 3;
    per_qubit.noise = NoiseModel::uniform(p);
    per_qubit.perQubitIdle = perQubitIdleFromSchedule(
        uniformIdleSchedule(code.numQubits(), latency),
        code.numQubits(), p);

    const Circuit a = buildZMemoryCircuit(code, schedule, uniform);
    const Circuit b = buildZMemoryCircuit(code, schedule, per_qubit);
    EXPECT_EQ(a.toString(), b.toString());
}

TEST(ScheduleNoise, UnequalIdleChangesTheCircuit)
{
    const CssCode code = surface13();
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    const double p = 2e-3;
    const double latency = 50000.0;

    TimedSchedule sched = uniformIdleSchedule(code.numQubits(), latency);
    TimedOp gate;
    gate.category = OpCategory::Gate;
    gate.resource = 0;
    gate.ionA = 0;
    gate.startUs = 0.0;
    gate.durationUs = 20000.0; // Qubit 0 idles less.
    sched.ops.push_back(gate);

    MemoryCircuitOptions uniform;
    uniform.rounds = 3;
    uniform.noise = NoiseModel::withLatency(p, latency);
    MemoryCircuitOptions per_qubit;
    per_qubit.rounds = 3;
    per_qubit.noise = NoiseModel::uniform(p);
    per_qubit.perQubitIdle =
        perQubitIdleFromSchedule(sched, code.numQubits(), p);

    const Circuit a = buildZMemoryCircuit(code, schedule, uniform);
    const Circuit b = buildZMemoryCircuit(code, schedule, per_qubit);
    EXPECT_NE(a.toString(), b.toString());
}

TEST(ScheduleNoise, EvaluateCodesignDerivesPerQubitIdle)
{
    // End-to-end: compile -> IR -> per-qubit twirls -> circuit -> DEM
    // -> decode, through the campaign engine underneath.
    const CssCode code = surface13();
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    CodesignConfig config;
    config.architecture = Architecture::Cyclone;
    MemoryExperimentConfig experiment;
    experiment.shots = 120;
    experiment.physicalError = 2e-3;
    experiment.rounds = 3;
    experiment.seed = 17;
    experiment.idleNoise = IdleNoiseMode::PerQubitSchedule;
    const CodesignEvaluation eval =
        evaluateCodesign(code, schedule, config, experiment);
    EXPECT_EQ(eval.memory.logicalErrorRate.trials, 120u);
    EXPECT_GT(eval.memory.demMechanisms, 0u);
}

TEST(ScheduleNoise, InputValidation)
{
    const TimedSchedule sched = uniformIdleSchedule(2, 100.0);
    EXPECT_THROW(perQubitIdleFromSchedule(sched, 2, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(perQubitIdleFromSchedule(sched, 2, 1.5),
                 std::invalid_argument);
    EXPECT_THROW(perQubitIdleFromSchedule(sched, 2, 1e-3, -1.0),
                 std::invalid_argument);
    EXPECT_THROW(perQubitIdleFromSchedule(sched, 5, 1e-3),
                 std::invalid_argument);
}

TEST(NoiseValidation, WithLatencyRejectsBadInputs)
{
    EXPECT_THROW(NoiseModel::withLatency(0.0, 100.0),
                 std::invalid_argument);
    EXPECT_THROW(NoiseModel::withLatency(-1e-3, 100.0),
                 std::invalid_argument);
    EXPECT_THROW(NoiseModel::withLatency(1.0, 100.0),
                 std::invalid_argument);
    EXPECT_THROW(
        NoiseModel::withLatency(std::nan(""), 100.0),
        std::invalid_argument);
    EXPECT_THROW(NoiseModel::withLatency(1e-3, -5.0),
                 std::invalid_argument);
    EXPECT_THROW(NoiseModel::withLatency(1e-3, std::nan("")),
                 std::invalid_argument);
    EXPECT_THROW(
        NoiseModel::withLatency(1e-3,
                                std::numeric_limits<double>::infinity()),
        std::invalid_argument);
    // Boundary cases that must keep working.
    EXPECT_NO_THROW(NoiseModel::withLatency(1e-3, 0.0));
    EXPECT_NO_THROW(NoiseModel::uniform(0.0)); // Noiseless circuit.
    EXPECT_THROW(NoiseModel::uniform(-0.1), std::invalid_argument);
    EXPECT_THROW(NoiseModel::uniform(1.0), std::invalid_argument);
}

TEST(NoiseValidation, MemoryExperimentConfigRejectsBadInputs)
{
    const CssCode code = surface13();
    const SyndromeSchedule schedule = makeXThenZSchedule(code);
    MemoryExperimentConfig config;
    config.shots = 10;

    config.physicalError = -1e-3;
    EXPECT_THROW(runZMemoryExperiment(code, schedule, config),
                 std::invalid_argument);
    config.physicalError = 1.0;
    EXPECT_THROW(runZMemoryExperiment(code, schedule, config),
                 std::invalid_argument);
    config.physicalError = std::nan("");
    EXPECT_THROW(runZMemoryExperiment(code, schedule, config),
                 std::invalid_argument);

    config.physicalError = 1e-3;
    config.roundLatencyUs = -10.0;
    EXPECT_THROW(runZMemoryExperiment(code, schedule, config),
                 std::invalid_argument);
    config.roundLatencyUs = std::nan("");
    EXPECT_THROW(runZMemoryExperiment(code, schedule, config),
                 std::invalid_argument);

    config.roundLatencyUs = 0.0;
    config.idleNoise = IdleNoiseMode::PerQubitSchedule;
    // Per-qubit mode without (correctly sized) twirls is an error.
    EXPECT_THROW(runZMemoryExperiment(code, schedule, config),
                 std::invalid_argument);
    config.perQubitIdle.resize(code.numQubits());
    EXPECT_NO_THROW(runZMemoryExperiment(code, schedule, config));
}

} // namespace
} // namespace cyclone
