/**
 * @file
 * Tests for the circuit IR and builder bookkeeping.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"

namespace cyclone {
namespace {

TEST(Circuit, MeasurementIndicesSequential)
{
    Circuit c(3);
    EXPECT_EQ(c.measureZ(0), 0u);
    EXPECT_EQ(c.measureX(1), 1u);
    EXPECT_EQ(c.measureZ(2), 2u);
    EXPECT_EQ(c.numMeasurements(), 3u);
}

TEST(Circuit, DetectorAndObservableCounting)
{
    Circuit c(2);
    c.measureZ(0);
    c.measureZ(1);
    EXPECT_EQ(c.addDetector({0}), 0u);
    EXPECT_EQ(c.addDetector({0, 1}), 1u);
    c.addObservable(0, {1});
    c.addObservable(3, {0});
    EXPECT_EQ(c.numDetectors(), 2u);
    EXPECT_EQ(c.numObservables(), 4u); // ids 0..3
}

TEST(Circuit, ZeroProbabilityChannelsSkipped)
{
    Circuit c(2);
    c.xError(0, 0.0);
    c.zError(0, -1.0);
    c.depolarize1(1, 0.0);
    c.depolarize2(0, 1, 0.0);
    c.pauli1(0, 0.0, 0.0, 0.0);
    EXPECT_TRUE(c.ops().empty());
    EXPECT_EQ(c.numNoiseSites(), 0u);
}

TEST(Circuit, NoiseSiteCounting)
{
    Circuit c(2);
    c.cx(0, 1);
    c.depolarize2(0, 1, 0.01);
    c.xError(0, 0.001);
    c.measureZ(0);
    EXPECT_EQ(c.numNoiseSites(), 2u);
}

TEST(Circuit, OpOrderPreserved)
{
    Circuit c(2);
    c.resetZ(0);
    c.cx(0, 1);
    c.measureZ(1);
    ASSERT_EQ(c.ops().size(), 3u);
    EXPECT_EQ(c.ops()[0].kind, OpKind::ResetZ);
    EXPECT_EQ(c.ops()[1].kind, OpKind::Cx);
    EXPECT_EQ(c.ops()[2].kind, OpKind::MeasureZ);
    EXPECT_EQ(c.ops()[1].targets[0], 0u);
    EXPECT_EQ(c.ops()[1].targets[1], 1u);
}

TEST(Circuit, Pauli1StoresAllProbabilities)
{
    Circuit c(1);
    c.pauli1(0, 0.01, 0.02, 0.03);
    ASSERT_EQ(c.ops().size(), 1u);
    EXPECT_DOUBLE_EQ(c.ops()[0].params[0], 0.01);
    EXPECT_DOUBLE_EQ(c.ops()[0].params[1], 0.02);
    EXPECT_DOUBLE_EQ(c.ops()[0].params[2], 0.03);
}

TEST(Circuit, ToStringMentionsOps)
{
    Circuit c(2);
    c.resetX(0);
    c.cx(0, 1);
    c.depolarize2(0, 1, 0.25);
    c.measureX(0);
    c.addDetector({0});
    const std::string s = c.toString();
    EXPECT_NE(s.find("RX"), std::string::npos);
    EXPECT_NE(s.find("CX 0 1"), std::string::npos);
    EXPECT_NE(s.find("DEPOLARIZE2(0.25)"), std::string::npos);
    EXPECT_NE(s.find("DETECTOR"), std::string::npos);
}

TEST(CircuitDeath, RejectsOutOfRangeTargets)
{
    Circuit c(2);
    EXPECT_DEATH(c.cx(0, 5), "out of range");
}

TEST(CircuitDeath, RejectsFutureMeasurementInDetector)
{
    Circuit c(2);
    c.measureZ(0);
    EXPECT_DEATH(c.addDetector({3}), "future measurement");
}

} // namespace
} // namespace cyclone
