/**
 * @file
 * Crash-safety tests for the distributed campaign stack: FaultPlan
 * grammar and firing semantics, retry-policy backoff bounds,
 * CRC-protected artifact blobs, and — the core of the suite — a
 * seeded chaos harness that kills a self-executing coordinator at
 * every commit point of the spool protocol and asserts that a
 * takeover coordinator finishes the campaign with results
 * byte-identical to an uninterrupted single-process run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/artifact_cache.h"
#include "campaign/campaign.h"
#include "campaign/campaign_io.h"
#include "campaign/coordinator.h"
#include "campaign/fault_plan.h"
#include "campaign/retry_policy.h"
#include "campaign/spool.h"
#include "common/crc32.h"
#include "dem/dem.h"

namespace cyclone {
namespace {

/** Fresh scratch directory under TMPDIR, removed on destruction. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(const char* tag)
    {
        const char* base = std::getenv("TMPDIR");
        path = std::string(base != nullptr ? base : "/tmp") +
            "/cyclone-" + tag + "-" + std::to_string(::getpid());
        std::string cmd = "rm -rf '" + path + "'";
        std::system(cmd.c_str());
        ::mkdir(path.c_str(), 0777);
    }

    ~ScratchDir()
    {
        std::string cmd = "rm -rf '" + path + "'";
        std::system(cmd.c_str());
    }
};

/** Disarm the process-global fault plan when a test scope exits, so
 *  a failing assertion can never leak faults into later tests. */
struct FaultPlanGuard
{
    ~FaultPlanGuard() { installFaultPlan(FaultPlan{}); }
};

/**
 * The chaos campaign: small enough that one schedule runs in well
 * under a second, rich enough to cross every commit point — two
 * tasks, multi-wave sampling, an adaptive early stop, staging.
 */
const char* kChaosSpec = R"(name = chaos
seed = 29

[task]
id = a
code = surface3
arch = none
p = 0.03
chunk_shots = 40
chunks_per_wave = 4
max_shots = 480
staging_chunks = 2
bp = minsum

[task]
id = b
code = surface3
arch = none
p = 0.08
chunk_shots = 48
chunks_per_wave = 3
max_shots = 2000
target_rel_err = 0.35
bp = minsum
)";

constexpr double kChaosLease = 0.25;

/** Fork a self-executing coordinator child with `plan` installed.
 *  Returns its exit code: 0 (completed), kFaultCrashExitCode
 *  (injected crash), or 3 (unexpected exception — a test failure). */
int
runChaosChild(const std::string& spoolDir, const std::string& plan)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        installFaultPlan(FaultPlan::parse(plan));
        CampaignSpec spec = parseCampaignSpec(kChaosSpec);
        spec.spool = spoolDir;
        spec.leaseSeconds = kChaosLease;
        CoordinatorOptions copts;
        copts.selfExecute = true;
        copts.threads = 2;
        copts.owner = "chaos-child";
        int rc = 0;
        try {
            runDistributedCampaign(spec, kChaosSpec, nullptr, nullptr,
                                   copts);
        } catch (const std::exception& ex) {
            std::fprintf(stderr, "chaos child: %s\n", ex.what());
            rc = 3;
        }
        ::_exit(rc);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

/** Fault-free takeover of whatever the child left behind. */
CampaignResult
takeoverAndFinish(const std::string& spoolDir)
{
    CampaignSpec spec = parseCampaignSpec(kChaosSpec);
    spec.spool = spoolDir;
    spec.leaseSeconds = kChaosLease;
    CoordinatorOptions copts;
    copts.selfExecute = true;
    copts.threads = 2;
    copts.owner = "chaos-takeover";
    return runDistributedCampaign(spec, kChaosSpec, nullptr, nullptr,
                                  copts);
}

/**
 * The campaign JSON with every timing/topology-dependent field
 * zeroed: what remains must be BYTE-identical between a clean
 * single-process run and any crash-and-takeover execution.
 */
std::string
normalizedJson(CampaignResult r)
{
    r.wallSeconds = 0.0;
    r.cache = CacheStats{};
    r.spool = SpoolStats{};
    for (TaskResult& t : r.tasks)
        t.sampleSeconds = 0.0;
    return campaignResultToJson(r);
}

void
expectTasksIdentical(const CampaignResult& a, const CampaignResult& b)
{
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t i = 0; i < a.tasks.size(); ++i) {
        const TaskResult& x = a.tasks[i];
        const TaskResult& y = b.tasks[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.contentHash, y.contentHash);
        EXPECT_EQ(x.logicalErrorRate.trials, y.logicalErrorRate.trials);
        EXPECT_EQ(x.logicalErrorRate.successes,
                  y.logicalErrorRate.successes);
        EXPECT_EQ(x.logicalErrorRate.rate, y.logicalErrorRate.rate);
        EXPECT_EQ(x.wilson, y.wilson);
        EXPECT_EQ(x.perRoundErrorRate, y.perRoundErrorRate);
        EXPECT_EQ(x.chunks, y.chunks);
        EXPECT_EQ(x.stoppedEarly, y.stoppedEarly);
        EXPECT_EQ(x.decoder.decodes, y.decoder.decodes);
        EXPECT_EQ(x.decoder.bpIterations, y.decoder.bpIterations);
        EXPECT_EQ(x.error, y.error);
    }
}

TEST(Crc32, MatchesKnownVectorsAndChains)
{
    // The IEEE 802.3 check value.
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string("")), 0u);

    // Seed-chaining equals one-shot over the concatenation.
    const std::string a = "cyclone";
    const std::string b = "-spool";
    EXPECT_EQ(crc32(b.data(), b.size(), crc32(a)), crc32(a + b));
}

TEST(FaultPlanParse, GrammarRoundTrip)
{
    const FaultPlan plan = FaultPlan::parse(
        " seed=99 ; spool.record.commit:torn@2*3 ;"
        " coord.record.merged:crash_before ;"
        " spool.io.write:transient*2@5 ;"
        " spool.heartbeat:freeze ");
    EXPECT_EQ(plan.seed, 99u);
    ASSERT_EQ(plan.rules.size(), 4u);

    EXPECT_EQ(plan.rules[0].point, "spool.record.commit");
    EXPECT_EQ(plan.rules[0].action, FaultAction::Torn);
    EXPECT_EQ(plan.rules[0].firstHit, 2u);
    EXPECT_EQ(plan.rules[0].count, 3u);

    EXPECT_EQ(plan.rules[1].point, "coord.record.merged");
    EXPECT_EQ(plan.rules[1].action, FaultAction::CrashBefore);
    EXPECT_EQ(plan.rules[1].firstHit, 1u);
    EXPECT_EQ(plan.rules[1].count, 1u);

    EXPECT_EQ(plan.rules[2].action, FaultAction::Transient);
    EXPECT_EQ(plan.rules[2].firstHit, 5u);
    EXPECT_EQ(plan.rules[2].count, 2u);

    EXPECT_EQ(plan.rules[3].action, FaultAction::Freeze);
    EXPECT_GT(plan.rules[3].count, 1u << 20)
        << "freeze defaults to forever";

    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("  ;  ").empty());
    EXPECT_THROW(FaultPlan::parse("no-colon"), std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("p:bogus-action"),
                 std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("p:crash@zero"), std::runtime_error);
}

TEST(FaultPlanFiring, RulesFireOnTheScheduledHitsOnly)
{
    FaultPlanGuard guard;
    installFaultPlan(
        FaultPlan::parse("test.point:transient@2*2;other:freeze"));

    // Hits 1..5 of the named point: only 2 and 3 fire.
    EXPECT_FALSE(faultPoint("test.point").transient);
    EXPECT_TRUE(faultPoint("test.point").transient);
    EXPECT_TRUE(faultPoint("test.point").transient);
    EXPECT_FALSE(faultPoint("test.point").transient);
    EXPECT_FALSE(faultPoint("test.point").transient);

    // Unrelated points never fire; freeze fires forever.
    EXPECT_FALSE(faultPoint("unrelated").transient);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(faultPoint("other").freeze);

    // Reinstalling resets the hit counters.
    installFaultPlan(FaultPlan::parse("test.point:transient@2*2"));
    EXPECT_FALSE(faultPoint("test.point").transient);
    EXPECT_TRUE(faultPoint("test.point").transient);

    // Disarmed: nothing fires.
    installFaultPlan(FaultPlan{});
    EXPECT_FALSE(faultPoint("test.point").transient);
}

TEST(FaultPlanFiring, TornLengthIsDeterministicAndShort)
{
    FaultPlanGuard guard;
    installFaultPlan(FaultPlan::parse("seed=5;p:torn"));
    for (size_t size : {1ul, 2ul, 17ul, 4096ul}) {
        const size_t n = faultTornLength("spool.record.commit", size);
        EXPECT_LT(n, size) << "torn writes must drop >= 1 byte";
        EXPECT_EQ(n, faultTornLength("spool.record.commit", size))
            << "same point+size => same cut";
    }
}

TEST(RetryPolicy, DelaysAreBoundedAndDeterministic)
{
    RetryPolicy p;
    p.baseDelaySeconds = 0.004;
    p.maxDelaySeconds = 0.1;
    p.jitterFraction = 0.25;

    for (size_t attempt = 1; attempt <= 40; ++attempt) {
        const double d = p.delayFor(attempt);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, p.maxDelaySeconds * (1.0 + p.jitterFraction))
            << "attempt " << attempt;
        EXPECT_EQ(d, p.delayFor(attempt)) << "must be pure";
    }

    // Attempt 1 is the base +- jitter; attempt 2 doubles it.
    const double d1 = p.delayFor(1);
    EXPECT_GE(d1, p.baseDelaySeconds * (1.0 - p.jitterFraction));
    EXPECT_LE(d1, p.baseDelaySeconds * (1.0 + p.jitterFraction));
    const double d2 = p.delayFor(2);
    EXPECT_GE(d2, 2.0 * p.baseDelaySeconds * (1.0 - p.jitterFraction));
    EXPECT_LE(d2, 2.0 * p.baseDelaySeconds * (1.0 + p.jitterFraction));

    // Jitter varies across attempts (same policy, different draw).
    EXPECT_NE(p.delayFor(1) * 2.0, p.delayFor(2));

    // A different seed draws different jitter.
    RetryPolicy q = p;
    q.seed ^= 0x1234;
    EXPECT_NE(p.delayFor(1), q.delayFor(1));

    // Huge attempt numbers must not overflow the exponent.
    EXPECT_LE(p.delayFor(100000),
              p.maxDelaySeconds * (1.0 + p.jitterFraction));
}

TEST(RetryPolicy, RunWithRetryRecoversWithinBudget)
{
    RetryPolicy p;
    p.maxAttempts = 4;
    p.baseDelaySeconds = 0.0; // no sleeping in tests
    p.maxDelaySeconds = 0.0;

    size_t calls = 0;
    size_t retries = 0;
    const int got = runWithRetry(
        p, "read", "/spool/x",
        [&] {
            if (++calls < 3)
                throw TransientIoError("EIO");
            return 42;
        },
        [&](size_t) { ++retries; });
    EXPECT_EQ(got, 42);
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(retries, 2u);
}

TEST(RetryPolicy, RunWithRetryGivesUpWithTypedError)
{
    RetryPolicy p;
    p.maxAttempts = 3;
    p.baseDelaySeconds = 0.0;
    p.maxDelaySeconds = 0.0;

    size_t calls = 0;
    try {
        runWithRetry(p, "rename", "/spool/open/t0000-s00001", [&]() -> int {
            ++calls;
            throw TransientIoError("ENOSPC");
        });
        FAIL() << "must throw";
    } catch (const SpoolIoError& ex) {
        EXPECT_EQ(calls, 3u) << "bounded attempts";
        EXPECT_EQ(ex.operation, "rename");
        EXPECT_EQ(ex.path, "/spool/open/t0000-s00001");
        EXPECT_EQ(ex.attempts, 3u);
        EXPECT_NE(std::string(ex.what()).find("rename"),
                  std::string::npos);
        EXPECT_NE(std::string(ex.what()).find("t0000-s00001"),
                  std::string::npos);
    }

    // Non-transient errors propagate immediately, unretried.
    calls = 0;
    EXPECT_THROW(runWithRetry(p, "parse", "/x",
                              [&]() -> int {
                                  ++calls;
                                  throw std::runtime_error("corrupt");
                              }),
                 std::runtime_error);
    EXPECT_EQ(calls, 1u);
}

TEST(ArtifactCacheQuarantine, CorruptBlobIsQuarantinedAndRebuilt)
{
    ScratchDir scratch("blob-quarantine");

    DetectorErrorModel dem;
    dem.numDetectors = 3;
    dem.numObservables = 1;
    dem.mechanisms.push_back({0.02, {0, 2}, 1});

    int builds = 0;
    auto build = [&] {
        ++builds;
        return dem;
    };

    ArtifactCache first;
    first.attachStore(scratch.path);
    first.getOrBuildDem(0xbeef, build);
    ASSERT_EQ(builds, 1);

    // Flip one payload byte of the published blob: the checksum in
    // the header must catch it.
    char blobName[64];
    std::snprintf(blobName, sizeof blobName, "dem-%016llx.bin",
                  0xbeefull);
    const std::string blobPath = scratch.path + "/" + blobName;
    std::string bytes = spoolReadFile(blobPath);
    ASSERT_GT(bytes.size(), 21u);
    bytes[bytes.size() - 1] ^= 0x40;
    spoolWriteAtomic(blobPath, bytes);

    ArtifactCache second;
    second.attachStore(scratch.path);
    const auto got = second.getOrBuildDem(0xbeef, build);
    EXPECT_EQ(builds, 2) << "corrupt blob must rebuild";
    EXPECT_EQ(second.stats().quarantinedBlobs, 1u);
    EXPECT_EQ(got->numDetectors, 3u);

    // The bad bytes moved into quarantine/ and a fresh blob took
    // their place: a third cache store-hits without rebuilding.
    EXPECT_TRUE(Spool(scratch.path).exists("quarantine/" +
                                           std::string(blobName)));
    ArtifactCache third;
    third.attachStore(scratch.path);
    third.getOrBuildDem(0xbeef, build);
    EXPECT_EQ(builds, 2) << "rebuild must republish a good blob";
    EXPECT_EQ(third.stats().demStoreHits, 1u);
    EXPECT_EQ(third.stats().quarantinedBlobs, 0u);
}

TEST(ChaosSchedules, EveryCrashPointRecoversBitIdentically)
{
    // The deterministic core of the chaos suite: one schedule per
    // commit point and failure mode of the protocol, each run as a
    // crashed coordinator child followed by a clean takeover.
    const std::vector<std::string> schedules = {
        // Coordinator milestones.
        "coord.lease.acquired:crash_before",
        "coord.prebuilt:crash_before",
        "coord.wave.published:crash_after@1",
        "coord.wave.published:crash_before@2",
        "coord.record.merged:crash_after@1",
        "coord.record.merged:crash_before@3",
        "coord.task.finalized:crash_after@1",
        // Journal commits: before, after, torn.
        "spool.journal.commit:crash_before@1",
        "spool.journal.commit:crash_after@1",
        "spool.journal.commit:torn@2",
        // Shard descriptor publishes.
        "spool.descriptor.commit:crash_before@2",
        "spool.descriptor.commit:crash_after@3",
        // Record commits, including torn records that must be
        // caught by the CRC, quarantined, and re-executed.
        "spool.record.commit:crash_before@1",
        "spool.record.commit:crash_after@2",
        "spool.record.commit:torn@1",
        "spool.record.commit:torn@3",
        // The DONE marker and the manifest.
        "spool.done.commit:crash_before",
        "spool.done.commit:crash_after",
        "spool.manifest.commit:crash_after",
        // Transient I/O absorbed by the retry policy (no crash).
        "spool.io.write:transient*2@3",
        // Artifact store publishes.
        "cache.blob.commit:crash_before@1",
        // Frozen heartbeats: the process lives, its leases rot.
        "spool.heartbeat:freeze;coord.lease.heartbeat:freeze",
    };
    ASSERT_GE(schedules.size(), 20u)
        << "the chaos suite must cover at least 20 schedules";

    CampaignSpec refSpec = parseCampaignSpec(kChaosSpec);
    refSpec.threads = 2;
    const CampaignResult reference = runCampaign(refSpec);
    for (const TaskResult& t : reference.tasks)
        ASSERT_TRUE(t.error.empty()) << t.error;
    const std::string referenceJson = normalizedJson(reference);

    ScratchDir scratch("chaos");
    for (size_t i = 0; i < schedules.size(); ++i) {
        SCOPED_TRACE("schedule " + std::to_string(i) + ": " +
                     schedules[i]);
        const std::string dir =
            scratch.path + "/s" + std::to_string(i);
        const int rc = runChaosChild(dir, schedules[i]);
        EXPECT_TRUE(rc == 0 || rc == kFaultCrashExitCode)
            << "child exit " << rc;
        const CampaignResult merged = takeoverAndFinish(dir);
        expectTasksIdentical(reference, merged);
        EXPECT_EQ(referenceJson, normalizedJson(merged));
    }
}

TEST(ChaosSchedules, SeededRandomSchedulesRecoverBitIdentically)
{
    // Randomized defense-in-depth over the same harness: a seeded
    // generator composes multi-rule plans across commit points.
    const char* points[] = {
        "spool.descriptor.commit", "spool.record.commit",
        "spool.journal.commit",    "spool.done.commit",
        "coord.wave.published",    "coord.record.merged",
        "coord.task.finalized",    "cache.blob.commit",
    };
    const char* actions[] = {"crash_before", "crash_after", "torn"};

    CampaignSpec refSpec = parseCampaignSpec(kChaosSpec);
    refSpec.threads = 2;
    const CampaignResult reference = runCampaign(refSpec);
    const std::string referenceJson = normalizedJson(reference);

    std::mt19937_64 rng(0xc4a05);
    ScratchDir scratch("chaos-rand");
    for (size_t i = 0; i < 6; ++i) {
        std::string plan;
        const size_t nRules = 1 + rng() % 2;
        for (size_t r = 0; r < nRules; ++r) {
            if (!plan.empty())
                plan += ";";
            plan += points[rng() % std::size(points)];
            plan += ":";
            plan += actions[rng() % std::size(actions)];
            plan += "@" + std::to_string(1 + rng() % 4);
        }
        SCOPED_TRACE("random schedule " + std::to_string(i) + ": " +
                     plan);
        const std::string dir =
            scratch.path + "/r" + std::to_string(i);
        const int rc = runChaosChild(dir, plan);
        EXPECT_TRUE(rc == 0 || rc == kFaultCrashExitCode)
            << "child exit " << rc;
        const CampaignResult merged = takeoverAndFinish(dir);
        expectTasksIdentical(reference, merged);
        EXPECT_EQ(referenceJson, normalizedJson(merged));
    }
}

TEST(ChaosSchedules, DoubleCrashThenTakeoverStillConverges)
{
    // Two successive coordinators die at different points before a
    // third finishes the job — failover must compose.
    CampaignSpec refSpec = parseCampaignSpec(kChaosSpec);
    refSpec.threads = 2;
    const CampaignResult reference = runCampaign(refSpec);

    ScratchDir scratch("chaos-double");
    const std::string dir = scratch.path + "/spool";
    int rc = runChaosChild(dir, "coord.record.merged:crash_before@1");
    EXPECT_EQ(rc, kFaultCrashExitCode);
    rc = runChaosChild(dir, "coord.task.finalized:crash_after@1");
    EXPECT_EQ(rc, kFaultCrashExitCode);

    const CampaignResult merged = takeoverAndFinish(dir);
    expectTasksIdentical(reference, merged);
    EXPECT_EQ(normalizedJson(reference), normalizedJson(merged));
    EXPECT_EQ(merged.spool.coordinatorTakeovers, 1u);
    EXPECT_GE(merged.spool.journalRestores, 1u)
        << "the second coordinator finalized at least one task";
}

TEST(CoordinatorTakeover, MidMergeKillIsByteIdentical)
{
    // The acceptance scenario: coordinator killed mid-merge, a
    // takeover resumes from journal + records + republished shards,
    // and the merged JSON is byte-identical (modulo timing and
    // cache/spool counters) to an uninterrupted run.
    CampaignSpec refSpec = parseCampaignSpec(kChaosSpec);
    refSpec.threads = 2;
    const CampaignResult reference = runCampaign(refSpec);

    ScratchDir scratch("takeover");
    const std::string dir = scratch.path + "/spool";
    const int rc =
        runChaosChild(dir, "coord.record.merged:crash_before@4");
    EXPECT_EQ(rc, kFaultCrashExitCode);

    Spool spool(dir);
    EXPECT_FALSE(spool.done());
    EXPECT_TRUE(spool.hasCoordinatorLease())
        << "the dead coordinator's lease must still be there";

    const CampaignResult merged = takeoverAndFinish(dir);
    EXPECT_EQ(merged.spool.coordinatorTakeovers, 1u);
    EXPECT_TRUE(spool.done());
    expectTasksIdentical(reference, merged);
    EXPECT_EQ(normalizedJson(reference), normalizedJson(merged));
}

} // namespace
} // namespace cyclone
