/**
 * @file
 * Tests for BP, OSD and the combined BP+OSD decoder.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/memory_circuit.h"
#include "decoder/bposd_decoder.h"
#include "decoder/exhaustive_decoder.h"
#include "dem/dem_builder.h"
#include "dem/dem_sampler.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

/** Hand-built repetition-code DEM: chain of detectors. */
DetectorErrorModel
repetitionDem(size_t n, double p)
{
    // Data flips i: trigger detectors i-1 and i (boundary: one).
    // Flip on the last qubit also flips the observable.
    DetectorErrorModel dem;
    dem.numDetectors = n - 1;
    dem.numObservables = 1;
    for (size_t i = 0; i < n; ++i) {
        DemMechanism m;
        m.probability = p;
        if (i > 0)
            m.detectors.push_back(static_cast<uint32_t>(i - 1));
        if (i < n - 1)
            m.detectors.push_back(static_cast<uint32_t>(i));
        m.observables = i == n - 1 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    return dem;
}

DetectorErrorModel
surface13Dem(double p, size_t rounds = 2)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = rounds;
    opts.noise = NoiseModel::uniform(p);
    Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    return buildDetectorErrorModel(circuit);
}

TEST(BpDecoder, TrivialSyndromeConvergesToZero)
{
    auto dem = repetitionDem(9, 0.05);
    BpDecoder bp(dem);
    BitVec syndrome(dem.numDetectors);
    EXPECT_TRUE(bp.decode(syndrome));
    EXPECT_EQ(bp.hardDecision().popcount(), 0u);
    EXPECT_EQ(bp.lastIterations(), 0u);
}

TEST(BpDecoder, SingleFlipDecoded)
{
    auto dem = repetitionDem(9, 0.05);
    BpDecoder bp(dem);
    // Mechanism 3 fires: detectors 2 and 3.
    BitVec syndrome(dem.numDetectors);
    syndrome.set(2, true);
    syndrome.set(3, true);
    ASSERT_TRUE(bp.decode(syndrome));
    const BitVec& hard = bp.hardDecision();
    EXPECT_TRUE(hard.get(3));
    EXPECT_EQ(hard.popcount(), 1u);
}

TEST(BpDecoder, BoundaryFlipDecoded)
{
    auto dem = repetitionDem(7, 0.02);
    BpDecoder bp(dem);
    BitVec syndrome(dem.numDetectors);
    syndrome.set(0, true); // only mechanism 0 or a long chain explains
    ASSERT_TRUE(bp.decode(syndrome));
    EXPECT_TRUE(bp.hardDecision().get(0));
}

TEST(BpDecoder, ProductSumVariantAlsoDecodes)
{
    auto dem = repetitionDem(9, 0.05);
    BpOptions opts;
    opts.variant = BpOptions::Variant::ProductSum;
    BpDecoder bp(dem, opts);
    BitVec syndrome(dem.numDetectors);
    syndrome.set(4, true);
    syndrome.set(5, true);
    ASSERT_TRUE(bp.decode(syndrome));
    EXPECT_TRUE(bp.hardDecision().get(5));
}

TEST(OsdDecoder, SolvesEverySingleMechanismSyndrome)
{
    auto dem = surface13Dem(0.003);
    OsdDecoder osd(dem);
    // Uniform priors: pass prior LLRs as posteriors.
    std::vector<float> llr(dem.mechanisms.size());
    for (size_t v = 0; v < llr.size(); ++v) {
        const double p = dem.mechanisms[v].probability;
        llr[v] = static_cast<float>(std::log((1.0 - p) / p));
    }
    std::vector<uint8_t> errors;
    for (size_t v = 0; v < dem.mechanisms.size(); v += 7) {
        BitVec syndrome(dem.numDetectors);
        for (uint32_t d : dem.mechanisms[v].detectors)
            syndrome.flip(d);
        ASSERT_TRUE(osd.decode(syndrome, llr, errors));
        // Verify the correction reproduces the syndrome.
        BitVec check(dem.numDetectors);
        for (size_t e = 0; e < errors.size(); ++e) {
            if (errors[e]) {
                for (uint32_t d : dem.mechanisms[e].detectors)
                    check.flip(d);
            }
        }
        EXPECT_EQ(check, syndrome);
    }
    EXPECT_GT(osd.discoveredRank(), 0u);
    EXPECT_LE(osd.discoveredRank(), dem.numDetectors);
}

TEST(BpOsd, CorrectsAllSingleMechanisms)
{
    // Distance-3 code, 2 rounds: every single fault must be decoded
    // to the correct observable outcome.
    auto dem = surface13Dem(0.003);
    BpOsdDecoder decoder(dem);
    size_t failures = 0;
    for (size_t v = 0; v < dem.mechanisms.size(); ++v) {
        BitVec syndrome(dem.numDetectors);
        for (uint32_t d : dem.mechanisms[v].detectors)
            syndrome.flip(d);
        const uint64_t predicted = decoder.decode(syndrome);
        if (predicted != dem.mechanisms[v].observables)
            ++failures;
    }
    EXPECT_EQ(failures, 0u)
        << failures << " of " << dem.mechanisms.size()
        << " single faults misdecoded";
}

TEST(BpOsd, AgreesWithExhaustiveOnSmallModel)
{
    // A small hand model where ML decoding is enumerable.
    DetectorErrorModel dem;
    dem.numDetectors = 4;
    dem.numObservables = 1;
    dem.mechanisms.push_back({0.01, {0}, 0});
    dem.mechanisms.push_back({0.01, {0, 1}, 1});
    dem.mechanisms.push_back({0.02, {1, 2}, 0});
    dem.mechanisms.push_back({0.01, {2, 3}, 1});
    dem.mechanisms.push_back({0.015, {3}, 0});
    dem.mechanisms.push_back({0.001, {0, 3}, 1});

    BpOsdDecoder bposd(dem);
    ExhaustiveDecoder exact(dem, 3);
    Rng rng(23);
    auto shots = sampleDem(dem, 300, rng);
    size_t disagreements = 0;
    for (size_t s = 0; s < shots.syndromes.size(); ++s) {
        const uint64_t a = bposd.decode(shots.syndromes[s]);
        const uint64_t b = exact.decode(shots.syndromes[s]);
        if (a != b)
            ++disagreements;
    }
    // BP+OSD is near-ML on such tiny models.
    EXPECT_LE(disagreements, 6u);
}

TEST(BpOsd, StatsAreConsistent)
{
    auto dem = surface13Dem(0.01);
    BpOsdDecoder decoder(dem);
    Rng rng(31);
    auto shots = sampleDem(dem, 100, rng);
    for (const BitVec& s : shots.syndromes)
        decoder.decode(s);
    const BpOsdStats& st = decoder.stats();
    EXPECT_EQ(st.decodes, 100u);
    EXPECT_EQ(st.bpConverged + st.osdInvocations, 100u);
    EXPECT_LE(st.osdFailures, st.osdInvocations);
}

TEST(Exhaustive, FindsExactMatch)
{
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.mechanisms.push_back({0.1, {0}, 1});
    dem.mechanisms.push_back({0.1, {1}, 0});
    ExhaustiveDecoder decoder(dem, 2);
    BitVec syndrome(2);
    syndrome.set(0, true);
    EXPECT_EQ(decoder.decode(syndrome), 1u);
    EXPECT_TRUE(decoder.lastDecodeMatched());
    syndrome.set(1, true);
    EXPECT_EQ(decoder.decode(syndrome), 1u);
}

} // namespace
} // namespace cyclone
