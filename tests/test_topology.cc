/**
 * @file
 * Tests for device topologies and their builders.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "qccd/durations.h"
#include "qccd/topology.h"
#include "qccd/topology_builders.h"

namespace cyclone {
namespace {

TEST(Topology, BasicConstruction)
{
    Topology t("test");
    NodeId a = t.addTrap(5);
    NodeId b = t.addTrap(5);
    NodeId j = t.addJunction();
    t.addEdge(a, j);
    t.addEdge(j, b);
    EXPECT_EQ(t.numTraps(), 2u);
    EXPECT_EQ(t.numJunctions(), 1u);
    EXPECT_EQ(t.numEdges(), 2u);
    EXPECT_EQ(t.degree(j), 2u);
    EXPECT_TRUE(t.isTrap(a));
    EXPECT_FALSE(t.isTrap(j));
    EXPECT_EQ(t.totalCapacity(), 10u);
    EXPECT_NO_THROW(t.validate());
}

TEST(Topology, ValidateRejectsOverconnectedTrap)
{
    Topology t("bad");
    NodeId a = t.addTrap(2);
    for (int i = 0; i < 3; ++i) {
        NodeId j = t.addJunction();
        t.addEdge(a, j);
    }
    EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, ValidateRejectsOverconnectedJunction)
{
    Topology t("bad");
    NodeId j = t.addJunction();
    for (int i = 0; i < 5; ++i) {
        NodeId a = t.addTrap(2);
        t.addEdge(j, a);
    }
    EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, ShortestPathEndpointsInclusive)
{
    Topology t = buildRing(6, 4);
    NodeId a = t.traps()[0];
    NodeId b = t.traps()[3];
    auto path = t.shortestPath(a, b);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    // Ring of 6: three trap-to-trap hops each crossing one junction;
    // path = t0 j t1 j t2 j t3 = 7 nodes.
    EXPECT_EQ(path.size(), 7u);
}

TEST(Topology, ShortestPathSelf)
{
    Topology t = buildRing(4, 2);
    auto path = t.shortestPath(t.traps()[1], t.traps()[1]);
    ASSERT_EQ(path.size(), 1u);
}

TEST(BaselineGrid, CountsAndDegrees)
{
    Topology t = buildBaselineGrid(4, 4, 5);
    EXPECT_EQ(t.numTraps(), 16u);
    EXPECT_EQ(t.numJunctions(), 4u * 3u);
    // Horizontal: each junction joins 2 traps; vertical: junction
    // columns chain.
    for (NodeId trap : t.traps())
        EXPECT_LE(t.degree(trap), 2u);
    for (NodeId j : t.junctions())
        EXPECT_LE(t.degree(j), 4u);
}

TEST(BaselineGrid, HorizontalTransitPassesThroughTraps)
{
    // The defining property behind trap roadblocks: moving several
    // columns within one row must pass through intermediate traps.
    Topology t = buildBaselineGrid(3, 5, 5);
    NodeId from = t.traps()[0];      // row 0, col 0
    NodeId to = t.traps()[4];        // row 0, col 4
    auto path = t.shortestPath(from, to);
    size_t traps_passed = 0;
    for (size_t i = 1; i + 1 < path.size(); ++i)
        traps_passed += t.isTrap(path[i]);
    EXPECT_GE(traps_passed, 3u);
}

TEST(AlternateGrid, NoThroughTrapTransit)
{
    Topology t = buildAlternateGrid(4, 4, 5);
    EXPECT_EQ(t.numTraps(), 16u);
    // Every trap hangs off a corridor junction (degree 1), so no path
    // between distinct traps passes through a third trap.
    for (NodeId trap : t.traps())
        EXPECT_EQ(t.degree(trap), 1u);
    auto path = t.shortestPath(t.traps()[0], t.traps()[15]);
    ASSERT_FALSE(path.empty());
    for (size_t i = 1; i + 1 < path.size(); ++i)
        EXPECT_FALSE(t.isTrap(path[i]));
}

TEST(AlternateGrid, RungsShortenPaths)
{
    Topology with_rungs = buildAlternateGrid(6, 6, 5, 3);
    Topology no_rungs = buildAlternateGrid(6, 6, 5, 1000000);
    NodeId a1 = with_rungs.traps()[0];
    NodeId b1 = with_rungs.traps()[35];
    NodeId a2 = no_rungs.traps()[0];
    NodeId b2 = no_rungs.traps()[35];
    EXPECT_LE(with_rungs.shortestPath(a1, b1).size(),
              no_rungs.shortestPath(a2, b2).size());
}

TEST(Ring, StructureMatchesCyclone)
{
    Topology t = buildRing(10, 3);
    EXPECT_EQ(t.numTraps(), 10u);
    EXPECT_EQ(t.numJunctions(), 10u);
    for (NodeId trap : t.traps())
        EXPECT_EQ(t.degree(trap), 2u);
    for (NodeId j : t.junctions())
        EXPECT_EQ(t.degree(j), 2u); // L junctions
}

TEST(Ring, SingleTrapHasNoJunctions)
{
    Topology t = buildRing(1, 100);
    EXPECT_EQ(t.numTraps(), 1u);
    EXPECT_EQ(t.numJunctions(), 0u);
}

TEST(JunctionMesh, PerimeterTrapsAndDegrees)
{
    Topology t = buildJunctionMesh(20, 3);
    EXPECT_EQ(t.numTraps(), 20u);
    // Mesh side g satisfies 4 (g - 1) >= 20 -> g = 6.
    EXPECT_EQ(t.numJunctions(), 36u);
    for (NodeId trap : t.traps())
        EXPECT_EQ(t.degree(trap), 1u);
    for (NodeId j : t.junctions())
        EXPECT_LE(t.degree(j), 4u);
}

TEST(JunctionMesh, TransitAvoidsTraps)
{
    Topology t = buildJunctionMesh(16, 3);
    auto path = t.shortestPath(t.traps()[0], t.traps()[8]);
    ASSERT_FALSE(path.empty());
    for (size_t i = 1; i + 1 < path.size(); ++i)
        EXPECT_FALSE(t.isTrap(path[i]));
}

TEST(Durations, JunctionCrossingByDegree)
{
    Durations d;
    EXPECT_DOUBLE_EQ(d.junctionCrossUs(2), 10.0);
    EXPECT_DOUBLE_EQ(d.junctionCrossUs(3), 100.0);
    EXPECT_DOUBLE_EQ(d.junctionCrossUs(4), 120.0);
}

TEST(Durations, ScalesApplyUniformly)
{
    Durations d;
    d.scale = 0.5;
    EXPECT_DOUBLE_EQ(d.split(), 40.0);
    EXPECT_DOUBLE_EQ(d.move(), 5.0);
    EXPECT_DOUBLE_EQ(d.merge(), 40.0);
    EXPECT_DOUBLE_EQ(d.junctionCrossUs(4), 60.0);
    d.junctionScale = 0.1;
    EXPECT_DOUBLE_EQ(d.junctionCrossUs(4), 6.0);
    // Gate times scale too.
    Durations nominal;
    EXPECT_DOUBLE_EQ(d.twoQubitGateUs(4),
                     0.5 * nominal.twoQubitGateUs(4));
}

TEST(GateTimeModel, ConstantBelowKneeGrowsAbove)
{
    GateTimeModel g;
    EXPECT_DOUBLE_EQ(g.twoQubitUs(2), g.baseUs);
    EXPECT_DOUBLE_EQ(g.twoQubitUs(12), g.baseUs);
    EXPECT_GT(g.twoQubitUs(20), g.baseUs);
    EXPECT_GT(g.twoQubitUs(50), g.twoQubitUs(20));
    // Quadratic default: doubling the chain quadruples the excess.
    EXPECT_NEAR(g.twoQubitUs(52) / g.twoQubitUs(26), 4.0, 1e-9);
}

} // namespace
} // namespace cyclone
