/**
 * @file
 * Property tests for bipartite edge coloring (Koenig construction).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qec/edge_coloring.h"

namespace cyclone {
namespace {

size_t
maxDegree(size_t num_left, size_t num_right,
          const std::vector<std::pair<size_t, size_t>>& edges)
{
    std::vector<size_t> dl(num_left, 0), dr(num_right, 0);
    for (auto& [u, v] : edges) {
        ++dl[u];
        ++dr[v];
    }
    size_t d = 0;
    for (size_t x : dl)
        d = std::max(d, x);
    for (size_t x : dr)
        d = std::max(d, x);
    return d;
}

TEST(EdgeColoring, EmptyGraph)
{
    auto colors = colorBipartiteEdges(3, 3, {});
    EXPECT_TRUE(colors.empty());
}

TEST(EdgeColoring, SingleEdge)
{
    std::vector<std::pair<size_t, size_t>> edges{{0, 0}};
    auto colors = colorBipartiteEdges(1, 1, edges);
    ASSERT_EQ(colors.size(), 1u);
    EXPECT_EQ(colors[0], 0u);
}

TEST(EdgeColoring, CompleteBipartiteUsesExactlyNColors)
{
    // K_{n,n} has max degree n and needs exactly n colors.
    for (size_t n : {2, 3, 5, 8}) {
        std::vector<std::pair<size_t, size_t>> edges;
        for (size_t u = 0; u < n; ++u)
            for (size_t v = 0; v < n; ++v)
                edges.emplace_back(u, v);
        auto colors = colorBipartiteEdges(n, n, edges);
        EXPECT_TRUE(isProperEdgeColoring(n, n, edges, colors));
        std::set<size_t> used(colors.begin(), colors.end());
        EXPECT_EQ(used.size(), n);
    }
}

TEST(EdgeColoring, ParallelEdgesSupported)
{
    // A multigraph with 3 parallel edges needs 3 colors.
    std::vector<std::pair<size_t, size_t>> edges{{0, 0}, {0, 0}, {0, 0}};
    auto colors = colorBipartiteEdges(1, 1, edges);
    EXPECT_TRUE(isProperEdgeColoring(1, 1, edges, colors));
    std::set<size_t> used(colors.begin(), colors.end());
    EXPECT_EQ(used.size(), 3u);
}

TEST(EdgeColoring, DetectsImproperColoring)
{
    std::vector<std::pair<size_t, size_t>> edges{{0, 0}, {0, 1}};
    std::vector<size_t> bad{0, 0}; // same color at vertex 0
    EXPECT_FALSE(isProperEdgeColoring(2, 2, edges, bad));
    std::vector<size_t> good{0, 1};
    EXPECT_TRUE(isProperEdgeColoring(2, 2, edges, good));
}

class RandomGraphs
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double,
                                                 uint64_t>>
{};

TEST_P(RandomGraphs, ColorsWithMaxDegreeColors)
{
    auto [nl, nr, density, seed] = GetParam();
    Rng rng(seed);
    std::vector<std::pair<size_t, size_t>> edges;
    for (size_t u = 0; u < nl; ++u) {
        for (size_t v = 0; v < nr; ++v) {
            if (rng.bernoulli(density))
                edges.emplace_back(u, v);
        }
    }
    if (edges.empty())
        return;
    auto colors = colorBipartiteEdges(nl, nr, edges);
    EXPECT_TRUE(isProperEdgeColoring(nl, nr, edges, colors));
    // Koenig's theorem: exactly max-degree colors suffice.
    size_t num_colors = 0;
    for (size_t c : colors)
        num_colors = std::max(num_colors, c + 1);
    EXPECT_LE(num_colors, maxDegree(nl, nr, edges));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphs,
    ::testing::Combine(::testing::Values(5, 17, 40),
                       ::testing::Values(7, 23, 40),
                       ::testing::Values(0.1, 0.4, 0.9),
                       ::testing::Values(1u, 2u, 3u)));

} // namespace
} // namespace cyclone
