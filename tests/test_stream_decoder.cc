/**
 * @file
 * Streaming decode service tests: window assembly across round
 * slices, commit-after-final-round semantics, both flush policies
 * (with an injected virtual clock), latency/occupancy accounting, and
 * bit-identity of streamed corrections against offline decoding —
 * including through the campaign sampler's streamed chunk-group path.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/adaptive_sampler.h"
#include "common/rng.h"
#include "decoder/bposd_decoder.h"
#include "decoder/stream_decoder.h"
#include "dem/dem.h"
#include "dem/shot_batch.h"

namespace cyclone {
namespace {

/** Repetition-code DEM (chain of detectors, full-rank H). */
DetectorErrorModel
chainDem(size_t n, double p)
{
    DetectorErrorModel dem;
    dem.numDetectors = n - 1;
    dem.numObservables = 1;
    for (size_t i = 0; i < n; ++i) {
        DemMechanism m;
        m.probability = p;
        if (i > 0)
            m.detectors.push_back(static_cast<uint32_t>(i - 1));
        if (i < n - 1)
            m.detectors.push_back(static_cast<uint32_t>(i));
        m.observables = i == n - 1 ? 1 : 0;
        dem.mechanisms.push_back(std::move(m));
    }
    return dem;
}

/** Random shot set over `dem` (error patterns + raw syndromes). */
ShotBatch
randomShots(const DetectorErrorModel& dem, size_t shots, Rng& rng)
{
    ShotBatch batch;
    batch.reset(dem.numDetectors, shots);
    for (size_t s = 0; s < shots; ++s) {
        if (rng.below(2) == 0) {
            const size_t faults = rng.below(4);
            for (size_t f = 0; f < faults; ++f) {
                const DemMechanism& mech =
                    dem.mechanisms[rng.below(dem.mechanisms.size())];
                for (uint32_t d : mech.detectors)
                    batch.flipDetector(s, d);
            }
        } else {
            for (size_t d = 0; d < dem.numDetectors; ++d) {
                if (rng.below(6) == 0)
                    batch.flipDetector(s, d);
            }
        }
    }
    return batch;
}

/** Offline reference: per-shot scalar decode of every syndrome. */
std::vector<uint64_t>
offlinePredictions(const DetectorErrorModel& dem, const ShotBatch& batch)
{
    BpOsdDecoder reference(dem);
    std::vector<uint64_t> predicted;
    reference.decodeBatch(batch, predicted);
    return predicted;
}

TEST(StreamDecoder, WindowCommitsOnlyAfterFinalRound)
{
    const DetectorErrorModel dem = chainDem(10, 0.1);
    BpOsdDecoder decoder(dem);
    StreamDecoderOptions options;
    options.streams = 1;
    options.roundsPerWindow = 3;
    StreamDecoder stream(decoder, dem.numDetectors, options);

    BitVec syndrome(dem.numDetectors);
    syndrome.set(2, true);
    syndrome.set(7, true);

    stream.pushRound(0, syndrome);
    stream.pushRound(0, syndrome);
    EXPECT_EQ(stream.readyWindows(), 0u)
        << "window must not be ready before its final round slice";
    stream.pushRound(0, syndrome);
    EXPECT_EQ(stream.readyWindows(), 1u);
    EXPECT_TRUE(stream.committed().empty())
        << "full-wave policy must not flush a 1/64 slab";

    stream.finish();
    ASSERT_EQ(stream.committed().size(), 1u);
    BpOsdDecoder reference(dem);
    EXPECT_EQ(stream.committed()[0].prediction,
              reference.decode(syndrome));
    EXPECT_EQ(stream.stats().flushesFinal, 1u);
    EXPECT_EQ(stream.stats().roundsPushed, 3u);
    EXPECT_EQ(stream.stats().truncatedRounds, 0u);
}

TEST(StreamDecoder, RoundSlicesPartitionTheDetectorRange)
{
    const DetectorErrorModel dem = chainDem(14, 0.1);
    BpOsdDecoder decoder(dem);
    StreamDecoderOptions options;
    options.roundsPerWindow = 5; // 13 detectors: ragged slices
    StreamDecoder stream(decoder, dem.numDetectors, options);

    size_t covered = 0;
    for (size_t r = 0; r < 5; ++r) {
        EXPECT_EQ(stream.roundBegin(r), covered) << "r=" << r;
        EXPECT_GE(stream.roundEnd(r), stream.roundBegin(r));
        covered = stream.roundEnd(r);
    }
    EXPECT_EQ(covered, dem.numDetectors)
        << "slices must tile [0, numDetectors) exactly";
}

TEST(StreamDecoder, StreamedBitIdenticalToOfflineAcrossStreams)
{
    const DetectorErrorModel dem = chainDem(12, 0.1);
    Rng rng(0x57e4321ULL);
    const size_t shots = 150; // ragged: not a multiple of any S below
    const ShotBatch batch = randomShots(dem, shots, rng);
    const std::vector<uint64_t> expected =
        offlinePredictions(dem, batch);

    for (const size_t S : {size_t{1}, size_t{4}, size_t{7}}) {
        BpOsdDecoder decoder(dem);
        StreamDecoderOptions options;
        options.streams = S;
        options.roundsPerWindow = 2;
        StreamDecoder stream(decoder, dem.numDetectors, options);

        // Round-synchronous feed: shot w*S + s is stream s, window w.
        const size_t windows = (shots + S - 1) / S;
        for (size_t w = 0; w < windows; ++w) {
            for (size_t r = 0; r < 2; ++r) {
                for (size_t s = 0; s < S; ++s) {
                    const size_t flat = w * S + s;
                    if (flat < shots)
                        stream.pushRound(s, batch.syndromeOf(flat));
                }
                stream.poll();
            }
        }
        stream.finish();

        ASSERT_EQ(stream.committed().size(), shots) << "S=" << S;
        for (const CommittedWindow& c : stream.committed()) {
            const size_t flat = c.windowIndex * S + c.stream;
            ASSERT_LT(flat, shots) << "S=" << S;
            EXPECT_EQ(c.prediction, expected[flat])
                << "S=" << S << " flat=" << flat;
            EXPECT_GE(c.latencyUs, 0.0);
        }
        EXPECT_EQ(stream.stats().windows, shots) << "S=" << S;
    }
}

TEST(StreamDecoder, FullWavePolicyFillsSlabsCompletely)
{
    const DetectorErrorModel dem = chainDem(8, 0.1);
    BpOsdDecoder decoder(dem);
    StreamDecoderOptions options;
    options.streams = 8;
    options.capacityChunks = 2; // slab = 128 windows
    StreamDecoder stream(decoder, dem.numDetectors, options);
    ASSERT_EQ(stream.slabCapacity(), 128u);

    Rng rng(0xacc0feeULL);
    const size_t shots = 256; // exactly two full slabs
    const ShotBatch batch = randomShots(dem, shots, rng);
    for (size_t w = 0; w < shots / 8; ++w) {
        for (size_t s = 0; s < 8; ++s)
            stream.pushRound(s, batch.syndromeOf(w * 8 + s));
        stream.poll();
    }
    stream.finish();

    const StreamDecodeStats& st = stream.stats();
    EXPECT_EQ(st.flushesFull, 2u);
    EXPECT_EQ(st.flushesDeadline, 0u);
    EXPECT_EQ(st.flushesFinal, 0u);
    EXPECT_EQ(st.slabSlots, 256u);
    EXPECT_EQ(st.slabFilled, 256u);
    EXPECT_DOUBLE_EQ(st.slabOccupancy(), 1.0);
    EXPECT_EQ(stream.committed().size(), shots);
}

TEST(StreamDecoder, DeadlinePolicyFlushesOnVirtualClock)
{
    const DetectorErrorModel dem = chainDem(8, 0.1);
    BpOsdDecoder decoder(dem);
    double clockUs = 0.0;
    StreamDecoderOptions options;
    options.streams = 2;
    options.policy = FlushPolicy::Deadline;
    options.deadlineUs = 100.0;
    options.flushAfterUs = 40.0;
    options.nowUs = [&clockUs] { return clockUs; };
    StreamDecoder stream(decoder, dem.numDetectors, options);

    BitVec syndrome(dem.numDetectors);
    syndrome.set(1, true);

    // Two windows become ready at t=0; the slab (64 slots) is nowhere
    // near full, so only the deadline timer can flush them.
    stream.pushRound(0, syndrome);
    stream.pushRound(1, syndrome);
    stream.poll();
    EXPECT_TRUE(stream.committed().empty());
    EXPECT_EQ(stream.readyWindows(), 2u);

    clockUs = 39.0; // just under the flush timeout
    stream.poll();
    EXPECT_TRUE(stream.committed().empty());

    clockUs = 41.0; // oldest window has now waited > flushAfterUs
    stream.poll();
    ASSERT_EQ(stream.committed().size(), 2u);
    const StreamDecodeStats& st = stream.stats();
    EXPECT_EQ(st.flushesDeadline, 1u);
    EXPECT_EQ(st.flushesFull, 0u);
    EXPECT_EQ(st.deadlineMisses, 0u) << "41us < 100us deadline";
    for (const CommittedWindow& c : stream.committed())
        EXPECT_DOUBLE_EQ(c.latencyUs, 41.0);
    EXPECT_DOUBLE_EQ(st.latencyMaxUs, 41.0);
    EXPECT_DOUBLE_EQ(st.latencySumUs, 82.0);
}

TEST(StreamDecoder, DeadlineMissesAreCounted)
{
    const DetectorErrorModel dem = chainDem(8, 0.1);
    BpOsdDecoder decoder(dem);
    double clockUs = 0.0;
    StreamDecoderOptions options;
    options.policy = FlushPolicy::Deadline;
    options.deadlineUs = 10.0;
    options.flushAfterUs = 50.0; // flush far later than the deadline
    options.nowUs = [&clockUs] { return clockUs; };
    StreamDecoder stream(decoder, dem.numDetectors, options);

    BitVec syndrome(dem.numDetectors);
    stream.pushRound(0, syndrome);
    clockUs = 60.0;
    stream.poll();
    ASSERT_EQ(stream.committed().size(), 1u);
    EXPECT_EQ(stream.stats().deadlineMisses, 1u);
    EXPECT_DOUBLE_EQ(stream.stats().deadlineMissFraction(), 1.0);
}

TEST(StreamDecoder, FinishDiscardsAndCountsTruncatedRounds)
{
    const DetectorErrorModel dem = chainDem(10, 0.1);
    BpOsdDecoder decoder(dem);
    StreamDecoderOptions options;
    options.streams = 2;
    options.roundsPerWindow = 4;
    StreamDecoder stream(decoder, dem.numDetectors, options);

    BitVec syndrome(dem.numDetectors);
    syndrome.set(3, true);
    // Stream 0 completes one window; stream 1 is abandoned 3 rounds
    // into its window.
    for (size_t r = 0; r < 4; ++r)
        stream.pushRound(0, syndrome);
    for (size_t r = 0; r < 3; ++r)
        stream.pushRound(1, syndrome);
    stream.finish();

    EXPECT_EQ(stream.committed().size(), 1u);
    EXPECT_EQ(stream.committed()[0].stream, 0u);
    EXPECT_EQ(stream.stats().windows, 1u);
    EXPECT_EQ(stream.stats().truncatedRounds, 3u);

    // finish() restarted the window ordinals: the next run's first
    // window is windowIndex 0 again on every stream.
    stream.committed().clear();
    for (size_t r = 0; r < 4; ++r)
        stream.pushRound(1, syndrome);
    stream.finish();
    ASSERT_EQ(stream.committed().size(), 1u);
    EXPECT_EQ(stream.committed()[0].windowIndex, 0u);
}

TEST(StreamDecoder, LatencyHistogramQuantilesWithinBinResolution)
{
    LatencyHistogram h;
    for (size_t i = 0; i < 99; ++i)
        h.record(10.0);
    h.record(5000.0);
    EXPECT_EQ(h.count, 100u);
    // One bin spans a factor of 2^0.25 (~19%); quantiles must land in
    // the recorded value's bin.
    EXPECT_NEAR(h.quantileUs(0.5), 10.0, 10.0 * 0.2);
    EXPECT_NEAR(h.quantileUs(0.99), 10.0, 10.0 * 0.2);
    EXPECT_NEAR(h.quantileUs(0.999), 5000.0, 5000.0 * 0.2);

    LatencyHistogram other;
    other.record(10.0);
    h.merge(other);
    EXPECT_EQ(h.count, 101u);

    LatencyHistogram empty;
    EXPECT_DOUBLE_EQ(empty.quantileUs(0.5), 0.0);
}

TEST(StreamDecoder, StatsMergeIsAdditive)
{
    StreamDecodeStats a;
    a.windows = 10;
    a.latencySumUs = 100.0;
    a.latencyMaxUs = 30.0;
    a.slabSlots = 64;
    a.slabFilled = 32;
    a.latency.record(10.0);
    StreamDecodeStats b;
    b.windows = 5;
    b.latencySumUs = 25.0;
    b.latencyMaxUs = 50.0;
    b.slabSlots = 64;
    b.slabFilled = 64;
    b.deadlineUs = 200.0;
    b.latency.record(5.0);

    a.merge(b);
    EXPECT_EQ(a.windows, 15u);
    EXPECT_DOUBLE_EQ(a.latencySumUs, 125.0);
    EXPECT_DOUBLE_EQ(a.latencyMaxUs, 50.0);
    EXPECT_EQ(a.slabSlots, 128u);
    EXPECT_EQ(a.slabFilled, 96u);
    EXPECT_DOUBLE_EQ(a.deadlineUs, 200.0);
    EXPECT_EQ(a.latency.count, 2u);
    a.computePercentiles();
    EXPECT_GT(a.p50Us, 0.0);
    EXPECT_GE(a.p99Us, a.p50Us);
    EXPECT_GE(a.p999Us, a.p99Us);
}

TEST(StreamDecoder, ChunkGroupStreamedMatchesOfflineChunkGroup)
{
    const DetectorErrorModel dem = chainDem(12, 0.15);
    const size_t count = 3;
    std::vector<ChunkPlan> plans(count);
    for (size_t k = 0; k < count; ++k) {
        plans[k].index = k;
        plans[k].shots = 40 + 13 * k; // ragged chunk sizes
        plans[k].seed = chunkSeed(0xca3f00dULL, k);
    }

    BpOsdDecoder offline(dem);
    std::vector<ShotBatch> offlineBatches;
    const ChunkOutcome want =
        runChunkGroup(dem, plans.data(), count, offline, offlineBatches);

    for (const size_t S : {size_t{1}, size_t{5}, size_t{8}}) {
        BpOsdDecoder decoder(dem);
        StreamDecoderOptions options;
        options.streams = S;
        options.roundsPerWindow = 3;
        StreamDecoder stream(decoder, dem.numDetectors, options);
        std::vector<ShotBatch> batches;
        const ChunkOutcome got = runChunkGroupStreamed(
            dem, plans.data(), count, stream, batches);
        EXPECT_EQ(got.shots, want.shots) << "S=" << S;
        EXPECT_EQ(got.failures, want.failures) << "S=" << S;
        EXPECT_EQ(stream.stats().windows, want.shots) << "S=" << S;
    }
}

TEST(StreamDecoder, ReusedAcrossGroupsKeepsFlatMappingAndStats)
{
    // A campaign worker drives many staged groups through one
    // StreamDecoder; each group's windowIndex mapping must restart
    // while the stats accumulate across groups.
    const DetectorErrorModel dem = chainDem(10, 0.12);
    ChunkPlan plan;
    plan.index = 0;
    plan.shots = 70;
    plan.seed = chunkSeed(0xbeefULL, 0);

    BpOsdDecoder offline(dem);
    std::vector<ShotBatch> offlineBatches;
    const ChunkOutcome want =
        runChunkGroup(dem, &plan, 1, offline, offlineBatches);

    BpOsdDecoder decoder(dem);
    StreamDecoderOptions options;
    options.streams = 6;
    StreamDecoder stream(decoder, dem.numDetectors, options);
    std::vector<ShotBatch> batches;
    for (size_t group = 0; group < 3; ++group) {
        const ChunkOutcome got =
            runChunkGroupStreamed(dem, &plan, 1, stream, batches);
        EXPECT_EQ(got.shots, want.shots) << "group=" << group;
        EXPECT_EQ(got.failures, want.failures) << "group=" << group;
    }
    EXPECT_EQ(stream.stats().windows, 3 * want.shots);
}

} // namespace
} // namespace cyclone
