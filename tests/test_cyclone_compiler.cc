/**
 * @file
 * Tests for the Cyclone compiler: the paper's structural guarantees
 * (zero roadblocks, 2x steps, full coverage, bounded time) and the
 * design-space behaviour of Section IV-A.
 */

#include <gtest/gtest.h>

#include "compiler/cyclone_compiler.h"
#include "core/explorer.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"

namespace cyclone {
namespace {

class CycloneOnCodes : public ::testing::TestWithParam<std::string>
{};

TEST_P(CycloneOnCodes, ZeroRoadblocksAlways)
{
    CssCode code = catalog::byName(GetParam());
    CycloneCompileResult r = compileCyclone(code);
    EXPECT_EQ(r.trapRoadblocks, 0u);
    EXPECT_EQ(r.junctionRoadblocks, 0u);
    EXPECT_EQ(r.rebalances, 0u);
}

TEST_P(CycloneOnCodes, BaseFormStructure)
{
    CssCode code = catalog::byName(GetParam());
    CycloneCompileResult r = compileCyclone(code);
    const size_t expected =
        std::max(code.numXStabs(), code.numZStabs());
    EXPECT_EQ(r.ringTraps, expected);
    EXPECT_EQ(r.numTraps, expected);
    EXPECT_EQ(r.numJunctions, expected);
    EXPECT_EQ(r.numAncilla, expected);
    // Two rotations of x steps each.
    EXPECT_EQ(r.stepDurationsUs.size(), 2 * expected);
}

TEST_P(CycloneOnCodes, FullGateCoverage)
{
    CssCode code = catalog::byName(GetParam());
    CycloneCompileResult r = compileCyclone(code);
    EXPECT_EQ(r.gateOps, code.hx().nnz() + code.hz().nnz());
}

TEST_P(CycloneOnCodes, AnalyticBoundHolds)
{
    CssCode code = catalog::byName(GetParam());
    for (size_t x : {size_t(8), size_t(16), size_t(0)}) {
        CycloneOptions opts;
        opts.numTraps = x;
        CycloneCompileResult r = compileCyclone(code, opts);
        const double bound = cycloneAnalyticWorstCaseUs(code, opts);
        EXPECT_LE(r.execTimeUs, bound * 1.0001)
            << "x = " << x << " exec " << r.execTimeUs
            << " bound " << bound;
    }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CycloneOnCodes,
                         ::testing::Values("hgp225", "bb72", "bb90",
                                           "bb144"));

TEST(Cyclone, AncillaReuseHalvesAncillaCount)
{
    // Section IV: only max(|X|, |Z|) ancillas, not |X| + |Z|.
    CssCode code = catalog::hgp225();
    CycloneCompileResult r = compileCyclone(code);
    EXPECT_EQ(r.numAncilla, code.numStabs() / 2);
}

TEST(Cyclone, StepTimesReflectStalls)
{
    // With unbalanced partitions some steps stall on the busiest
    // trap (Fig. 12); step durations are not all equal.
    CssCode code = catalog::hgp225();
    CycloneOptions opts;
    opts.numTraps = 10; // 225 data over 10 traps: uneven gates
    CycloneCompileResult r = compileCyclone(code, opts);
    double min_step = 1e300, max_step = 0.0;
    for (double s : r.stepDurationsUs) {
        min_step = std::min(min_step, s);
        max_step = std::max(max_step, s);
    }
    EXPECT_GT(max_step, min_step);
}

TEST(Cyclone, SingleTrapHasNoShuttling)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    CycloneOptions opts;
    opts.numTraps = 1;
    CycloneCompileResult r = compileCyclone(code, opts);
    EXPECT_EQ(r.shuttleOps, 0u);
    EXPECT_EQ(r.swapOps, 0u);
    EXPECT_EQ(r.numJunctions, 0u);
    EXPECT_DOUBLE_EQ(r.serialized.shuttleUs, 0.0);
    // Everything serializes in one huge chain: execution is the
    // serialized gate+measure+prep time.
    EXPECT_NEAR(r.execTimeUs, r.serialized.total(),
                r.serialized.total() * 1e-9);
}

TEST(Cyclone, CapacityValidation)
{
    CssCode code = catalog::bb72();
    CycloneOptions opts;
    opts.numTraps = 6;
    opts.capacity = 2; // far below occupancy
    EXPECT_THROW(compileCyclone(code, opts), std::runtime_error);
}

TEST(Cyclone, ScaleActsLinearly)
{
    CssCode code = catalog::bb72();
    CycloneOptions half;
    half.durations.scale = 0.5;
    CycloneCompileResult nominal = compileCyclone(code);
    CycloneCompileResult scaled = compileCyclone(code, half);
    EXPECT_NEAR(scaled.execTimeUs, nominal.execTimeUs * 0.5,
                nominal.execTimeUs * 1e-6);
}

TEST(Cyclone, GateSwapBeatsIonSwapOnDenseTraps)
{
    // Fig. 21: Cyclone's fixed-direction rotation makes IonSwap pay
    // the full chain crossing, so GateSwap wins.
    CssCode code = catalog::hgp225();
    CycloneOptions gate_swap;
    gate_swap.swap = SwapKind::GateSwap;
    CycloneOptions ion_swap;
    ion_swap.swap = SwapKind::IonSwap;
    CycloneCompileResult g = compileCyclone(code, gate_swap);
    CycloneCompileResult i = compileCyclone(code, ion_swap);
    EXPECT_LT(g.execTimeUs, i.execTimeUs);
}

TEST(Explorer, TightCapacityFormula)
{
    CssCode code = catalog::hgp225();
    auto points = sweepCycloneTrapCounts(code, {9, 45, 64});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].capacity, (225u + 8u) / 9u + 24u);
    // x = 64: ceil(225/64) + ceil(216/64) = 4 + 4 = 8, the paper's
    // "64 trap architecture with a capacity of 8 ions per trap".
    EXPECT_EQ(points[2].traps, 64u);
    EXPECT_EQ(points[2].capacity, 8u);
}

TEST(Explorer, DenseConfigsAreSlower)
{
    // Fig. 13 shape: very few traps (huge chains) are far slower
    // than the mid/base range.
    CssCode code = catalog::hgp225();
    auto points = sweepCycloneTrapCounts(code, {1, 9, 64, 108});
    EXPECT_GT(points[0].execTimeUs, 50.0 * points[2].execTimeUs);
    EXPECT_GT(points[1].execTimeUs, points[2].execTimeUs);
    const auto& best = bestDesignPoint(points);
    EXPECT_GE(best.traps, 45u);
}

TEST(Explorer, AnalyticTracksConstructed)
{
    CssCode code = catalog::bb72();
    auto points = sweepCycloneTrapCounts(code, {4, 12, 36});
    for (const auto& p : points) {
        EXPECT_GE(p.analyticUs, p.execTimeUs);
        EXPECT_LT(p.analyticUs, p.execTimeUs * 20.0);
    }
}

} // namespace
} // namespace cyclone
