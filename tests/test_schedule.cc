/**
 * @file
 * Tests for syndrome-extraction schedules.
 */

#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"
#include "qec/tanner.h"

namespace cyclone {
namespace {

class ScheduleOnCodes : public ::testing::TestWithParam<std::string>
{};

TEST_P(ScheduleOnCodes, SerialScheduleValid)
{
    CssCode code = catalog::byName(GetParam());
    SyndromeSchedule sched = makeSerialSchedule(code);
    EXPECT_TRUE(sched.isValidFor(code));
    EXPECT_EQ(sched.depth(), sched.totalGates());
    EXPECT_EQ(sched.totalGates(),
              code.hx().nnz() + code.hz().nnz());
    EXPECT_EQ(sched.policy(), "serial");
}

TEST_P(ScheduleOnCodes, XThenZScheduleValid)
{
    CssCode code = catalog::byName(GetParam());
    SyndromeSchedule sched = makeXThenZSchedule(code);
    EXPECT_TRUE(sched.isValidFor(code));
    // Koenig bound: X phase needs max-degree(X subgraph) slices, Z
    // phase likewise.
    TannerGraph xg(code, true, false);
    TannerGraph zg(code, false, true);
    EXPECT_LE(sched.depth(), xg.maxDegree() + zg.maxDegree());
    // Depth is at least the stabilizer weight of each phase.
    EXPECT_GE(sched.depth(),
              code.maxXWeight() + code.maxZWeight());
}

TEST_P(ScheduleOnCodes, InterleavedScheduleValidAndTighter)
{
    CssCode code = catalog::byName(GetParam());
    SyndromeSchedule inter = makeInterleavedSchedule(code);
    SyndromeSchedule xz = makeXThenZSchedule(code);
    EXPECT_TRUE(inter.isValidFor(code));
    EXPECT_LE(inter.depth(), xz.depth());
    TannerGraph full(code, true, true);
    EXPECT_LE(inter.depth(), full.maxDegree());
}

TEST_P(ScheduleOnCodes, SlicesAreConflictFree)
{
    CssCode code = catalog::byName(GetParam());
    std::vector<SyndromeSchedule> schedules;
    schedules.push_back(makeXThenZSchedule(code));
    schedules.push_back(makeInterleavedSchedule(code));
    for (const SyndromeSchedule& sched : schedules) {
        for (const auto& slice : sched.slices()) {
            std::set<size_t> data;
            std::set<std::pair<int, size_t>> stabs;
            for (const ScheduledGate& g : slice) {
                EXPECT_TRUE(data.insert(g.data).second)
                    << "data qubit repeated in slice";
                EXPECT_TRUE(
                    stabs.insert({g.kind == StabKind::X ? 0 : 1,
                                  g.stabIndex})
                        .second)
                    << "stabilizer repeated in slice";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Catalog, ScheduleOnCodes,
                         ::testing::Values("hgp225", "bb72", "bb90",
                                           "bb144"));

TEST(Schedule, SurfaceCodeDepths)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(3), 3);
    SyndromeSchedule xz = makeXThenZSchedule(code);
    // Weight-4 stabilizers: at most 4 + 4 slices.
    EXPECT_LE(xz.depth(), 8u);
    EXPECT_TRUE(xz.isValidFor(code));
}

TEST(Schedule, HgpInterleavingBeatsXThenZ)
{
    // The motivating property: edge-colorable HGP codes interleave.
    CssCode code = catalog::hgp225();
    SyndromeSchedule inter = makeInterleavedSchedule(code);
    SyndromeSchedule xz = makeXThenZSchedule(code);
    EXPECT_LT(inter.depth(), xz.depth());
}

TEST(Schedule, ValidityCatchesMissingGate)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(2), 2);
    SyndromeSchedule good = makeXThenZSchedule(code);
    // Drop the last slice: no longer valid.
    auto slices = good.slices();
    slices.pop_back();
    SyndromeSchedule bad("truncated", slices);
    EXPECT_FALSE(bad.isValidFor(code));
}

TEST(Schedule, ValidityCatchesConflict)
{
    CssCode code = makeHgpCode(ClassicalCode::repetition(2), 2);
    SyndromeSchedule good = makeSerialSchedule(code);
    // Merge all gates into one slice: conflicts appear.
    std::vector<ScheduledGate> merged;
    for (const auto& slice : good.slices())
        merged.insert(merged.end(), slice.begin(), slice.end());
    SyndromeSchedule bad("merged", {merged});
    EXPECT_FALSE(bad.isValidFor(code));
}

TEST(TannerGraph, EdgeCountsAndDegrees)
{
    CssCode code = catalog::bb72();
    TannerGraph full(code, true, true);
    EXPECT_EQ(full.edges().size(),
              code.hx().nnz() + code.hz().nnz());
    EXPECT_EQ(full.numStabVertices(), code.numStabs());
    EXPECT_EQ(full.numDataVertices(), code.numQubits());
    // BB stabilizers have weight 6; data qubits see 6 stabilizers
    // (3 X + 3 Z each for BB codes).
    EXPECT_EQ(full.maxDegree(), 6u);

    TannerGraph xonly(code, true, false);
    EXPECT_EQ(xonly.edges().size(), code.hx().nnz());
    EXPECT_EQ(xonly.numStabVertices(), code.numXStabs());
}

} // namespace
} // namespace cyclone
