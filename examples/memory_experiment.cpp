/**
 * @file
 * Hardware-aware memory experiment: sweep the physical error rate for
 * one code under a chosen architecture and print the logical error
 * rate curve with Wilson error bars (the raw material of the paper's
 * Figs. 14-15).
 *
 * Run: ./memory_experiment [code-name] [cyclone|baseline] [shots]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cyclone.h"

using namespace cyclone;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "bb72";
    const std::string arch = argc > 2 ? argv[2] : "cyclone";
    const size_t shots = argc > 3
        ? static_cast<size_t>(std::atoll(argv[3])) : 400;

    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);

    CodesignConfig config;
    config.architecture = arch == "baseline"
        ? Architecture::BaselineGrid : Architecture::Cyclone;
    CompileResult compiled = compileCodesign(code, schedule, config);
    std::printf("%s on %s: round latency %.2f ms\n",
                code.name().c_str(), architectureName(
                    config.architecture),
                compiled.execTimeUs / 1000.0);

    std::printf("%10s %12s %12s %10s %12s\n", "p", "LER", "+-",
                "perRound", "BP-conv");
    for (double p : {2e-4, 5e-4, 1e-3, 2e-3}) {
        MemoryExperimentConfig exp;
        exp.physicalError = p;
        exp.shots = shots;
        exp.roundLatencyUs = compiled.execTimeUs;
        exp.seed = 1234;
        auto result = runZMemoryExperiment(code, schedule, exp);
        const double conv = result.decoder.decodes > 0
            ? static_cast<double>(result.decoder.bpConverged) /
                result.decoder.decodes
            : 0.0;
        std::printf("%10.1e %12.5f %12.5f %10.5f %11.0f%%\n", p,
                    result.logicalErrorRate.rate,
                    wilsonHalfWidth(result.logicalErrorRate.successes,
                                    result.logicalErrorRate.trials),
                    result.perRoundErrorRate, 100.0 * conv);
    }
    return 0;
}
