/**
 * @file
 * Hardware-aware memory experiment: sweep the physical error rate for
 * one code under a chosen architecture and print the logical error
 * rate curve with Wilson error bars (the raw material of the paper's
 * Figs. 14-15).
 *
 * The sweep runs as one campaign: the architecture is compiled once
 * (shared through the artifact cache), the four DEMs build in parallel
 * on the work-stealing pool, and an optional relative-error target
 * lets converged points stop before the shot cap.
 *
 * Run: ./memory_experiment [code-name] [cyclone|baseline] [shots]
 *      [target-rel-err]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cyclone.h"

using namespace cyclone;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "bb72";
    const std::string arch = argc > 2 ? argv[2] : "cyclone";
    const size_t shots = argc > 3
        ? static_cast<size_t>(std::atoll(argv[3])) : 400;
    const double rel_err = argc > 4 ? std::atof(argv[4]) : 0.0;

    CampaignSpec spec;
    spec.name = "memory-experiment";
    spec.seed = 1234;
    for (double p : {2e-4, 5e-4, 1e-3, 2e-3}) {
        TaskSpec task;
        task.codeName = name;
        task.architecture = arch == "baseline"
            ? Architecture::BaselineGrid : Architecture::Cyclone;
        task.compileLatency = true;
        task.physicalError = p;
        task.stop.chunkShots = 128;
        task.stop.maxShots = shots;
        task.stop.targetRelErr = rel_err;
        spec.tasks.push_back(std::move(task));
    }

    const CampaignResult result = runCampaign(spec);
    std::printf("%s on %s: round latency %.2f ms\n", name.c_str(),
                result.tasks.front().architecture.c_str(),
                result.tasks.front().roundLatencyUs / 1000.0);

    std::printf("%10s %12s %12s %10s %12s %8s\n", "p", "LER", "+-",
                "perRound", "BP-conv", "shots");
    for (const TaskResult& t : result.tasks) {
        if (!t.error.empty()) {
            std::printf("%10.1e failed: %s\n", t.physicalError,
                        t.error.c_str());
            continue;
        }
        const double conv = t.decoder.decodes > 0
            ? static_cast<double>(t.decoder.bpConverged) /
                t.decoder.decodes
            : 0.0;
        std::printf("%10.1e %12.5f %12.5f %10.5f %11.0f%% %8zu\n",
                    t.physicalError, t.logicalErrorRate.rate, t.wilson,
                    t.perRoundErrorRate, 100.0 * conv,
                    t.logicalErrorRate.trials);
    }
    std::printf("total %zu shots, wall %.1fs, compile cache %zu/%zu "
                "hit/miss, dem cache %zu/%zu\n",
                result.totalShots(), result.wallSeconds,
                result.cache.compileHits, result.cache.compileMisses,
                result.cache.demHits, result.cache.demMisses);
    return 0;
}
