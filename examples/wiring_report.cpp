/**
 * @file
 * Spatial and control overhead report (Sections II-B4, IV and VI):
 * traps, junctions, ancilla ions and DAC channels for every codesign,
 * plus the Pseudo-OPT shuttling-path count the practical designs
 * avoid building.
 *
 * Run: ./wiring_report [code-name] (default hgp225)
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/cyclone.h"

using namespace cyclone;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "hgp225";
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);

    std::printf("Wiring and spatial overhead for %s\n\n",
                code.name().c_str());
    std::printf("Pseudo-OPT would require %zu distinct trap-to-trap "
                "shuttling paths (non-planar).\n\n",
                pseudoOptEdgeCount(code));

    std::printf("%-16s %7s %10s %9s %6s %14s\n", "design", "traps",
                "junctions", "ancilla", "DACs", "exec (ms)");
    std::vector<std::pair<std::string, CompileResult>> compiled;
    for (Architecture arch :
         {Architecture::BaselineGrid, Architecture::AlternateGrid,
          Architecture::MeshJunction, Architecture::Cyclone}) {
        CodesignConfig config;
        config.architecture = arch;
        CompileResult r = compileCodesign(code, schedule, config);
        ControlOverhead overhead = arch == Architecture::Cyclone
            ? cycloneControlOverhead(r) : gridControlOverhead(r);
        std::printf("%-16s %7zu %10zu %9zu %6zu %14.2f\n",
                    architectureName(arch), overhead.traps,
                    overhead.junctions, overhead.ancillas,
                    overhead.dacChannels,
                    r.schedule.makespan() / 1000.0);
        compiled.emplace_back(architectureName(arch), std::move(r));
    }

    // Fig. 11b variant: the loop embedded in a modified grid.
    CycloneOptions grid_ring;
    grid_ring.gridEmbedded = true;
    CycloneCompileResult on_grid = compileCyclone(code, grid_ring);
    ControlOverhead embedded = cycloneControlOverhead(on_grid);
    std::printf("%-16s %7zu %10zu %9zu %6zu %14.2f\n",
                "cyclone-on-grid", embedded.traps, embedded.junctions,
                embedded.ancillas, embedded.dacChannels,
                on_grid.schedule.makespan() / 1000.0);
    compiled.emplace_back("cyclone-on-grid", std::move(on_grid));

    // Where each design's round spends its time, read from the
    // TimedSchedule IR: per-category share of the serialized total,
    // realized parallelization, and roadblock waiting.
    std::printf("\n%-16s %6s %8s %9s %6s %9s %7s %11s\n", "design",
                "gate%", "shuttle%", "junction%", "swap%", "parallel%",
                "waits", "wait (ms)");
    for (const auto& [name_label, r] : compiled) {
        const TimedSchedule& ir = r.schedule;
        const TimeBreakdown serial = ir.breakdown();
        const double total = serial.total();
        const WaitHistogram waits = ir.waitHistogram();
        std::string valid;
        const bool ok = ir.validate(&valid);
        std::printf("%-16s %6.1f %8.1f %9.1f %6.1f %9.1f %7zu %11.2f%s\n",
                    name_label.c_str(),
                    100.0 * serial.gateUs / total,
                    100.0 * serial.shuttleUs / total,
                    100.0 * serial.junctionUs / total,
                    100.0 * serial.swapUs / total,
                    100.0 * ir.makespan() / total, waits.waits,
                    waits.totalWaitUs / 1000.0,
                    ok ? "" : "  [IR INVALID]");
    }

    std::printf("\nCyclone's lockstep symmetry lets one broadcast DAC "
                "drive every trap\n(grids need one DAC per trap; see "
                "paper Section II-B4).\n");

    // Section IV-C: would two independent loops help?
    TwoLoopEstimate loops = estimateTwoLoopCyclone(code);
    std::printf("\nLoop-cut analysis (Section IV-C): %zu of %zu "
                "stabilizers cross any balanced cut (%.0f%%).\n",
                loops.cut.crossingStabs, code.numStabs(),
                100.0 * loops.cut.crossingFraction);
    std::printf("Single loop %.2f ms vs two concurrent loops %.2f ms "
                "-> the single global loop wins.\n",
                loops.singleLoopUs / 1000.0,
                loops.twoLoopUs / 1000.0);
    return 0;
}
