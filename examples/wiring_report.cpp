/**
 * @file
 * Spatial and control overhead report (Sections II-B4, IV and VI):
 * traps, junctions, ancilla ions and DAC channels for every codesign,
 * plus the Pseudo-OPT shuttling-path count the practical designs
 * avoid building.
 *
 * Run: ./wiring_report [code-name] (default hgp225)
 */

#include <cstdio>
#include <string>

#include "core/cyclone.h"

using namespace cyclone;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "hgp225";
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);

    std::printf("Wiring and spatial overhead for %s\n\n",
                code.name().c_str());
    std::printf("Pseudo-OPT would require %zu distinct trap-to-trap "
                "shuttling paths (non-planar).\n\n",
                pseudoOptEdgeCount(code));

    std::printf("%-16s %7s %10s %9s %6s %14s\n", "design", "traps",
                "junctions", "ancilla", "DACs", "exec (ms)");
    for (Architecture arch :
         {Architecture::BaselineGrid, Architecture::AlternateGrid,
          Architecture::MeshJunction, Architecture::Cyclone}) {
        CodesignConfig config;
        config.architecture = arch;
        CompileResult r = compileCodesign(code, schedule, config);
        ControlOverhead overhead = arch == Architecture::Cyclone
            ? cycloneControlOverhead(r) : gridControlOverhead(r);
        std::printf("%-16s %7zu %10zu %9zu %6zu %14.2f\n",
                    architectureName(arch), overhead.traps,
                    overhead.junctions, overhead.ancillas,
                    overhead.dacChannels, r.execTimeUs / 1000.0);
    }
    // Fig. 11b variant: the loop embedded in a modified grid.
    CycloneOptions grid_ring;
    grid_ring.gridEmbedded = true;
    CycloneCompileResult on_grid = compileCyclone(code, grid_ring);
    ControlOverhead embedded = cycloneControlOverhead(on_grid);
    std::printf("%-16s %7zu %10zu %9zu %6zu %14.2f\n",
                "cyclone-on-grid", embedded.traps, embedded.junctions,
                embedded.ancillas, embedded.dacChannels,
                on_grid.execTimeUs / 1000.0);

    std::printf("\nCyclone's lockstep symmetry lets one broadcast DAC "
                "drive every trap\n(grids need one DAC per trap; see "
                "paper Section II-B4).\n");

    // Section IV-C: would two independent loops help?
    TwoLoopEstimate loops = estimateTwoLoopCyclone(code);
    std::printf("\nLoop-cut analysis (Section IV-C): %zu of %zu "
                "stabilizers cross any balanced cut (%.0f%%).\n",
                loops.cut.crossingStabs, code.numStabs(),
                100.0 * loops.cut.crossingFraction);
    std::printf("Single loop %.2f ms vs two concurrent loops %.2f ms "
                "-> the single global loop wins.\n",
                loops.singleLoopUs / 1000.0,
                loops.twoLoopUs / 1000.0);
    return 0;
}
