/**
 * @file
 * Design-space exploration (the Fig. 13 study): sweep Cyclone ring
 * sizes with tight trap capacities for a code and report execution
 * time per round, the closed-form bound, and the spacetime cost.
 *
 * Run: ./design_space [code-name] (default hgp225)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/cyclone.h"

using namespace cyclone;

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "hgp225";
    CssCode code = catalog::byName(name);
    std::printf("Design space for %s (n = %zu, m = %zu)\n\n",
                code.name().c_str(), code.numQubits(),
                code.numStabs());

    const size_t base = std::max(code.numXStabs(), code.numZStabs());
    std::vector<size_t> trap_counts{1, 3, 9, 15, 25, 45, 64, 75};
    if (base > trap_counts.back())
        trap_counts.push_back(base);

    auto points = sweepCycloneTrapCounts(code, trap_counts);
    std::printf("%6s %9s %14s %14s %16s\n", "traps", "capacity",
                "exec (ms)", "bound (ms)", "spacetime");
    for (const auto& p : points) {
        std::printf("%6zu %9zu %14.2f %14.2f %16.3e\n", p.traps,
                    p.capacity, p.execTimeUs / 1000.0,
                    p.analyticUs / 1000.0, p.spacetime);
    }
    const auto& best = bestDesignPoint(points);
    std::printf("\nFastest configuration: %zu traps at capacity %zu "
                "(%.2f ms per round)\n",
                best.traps, best.capacity, best.execTimeUs / 1000.0);

    // Compare against the baseline grid for context.
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    CodesignConfig cfg;
    cfg.architecture = Architecture::BaselineGrid;
    CompileResult baseline = compileCodesign(code, schedule, cfg);
    std::printf("Baseline grid reference: %.2f ms per round\n",
                baseline.execTimeUs / 1000.0);
    return 0;
}
