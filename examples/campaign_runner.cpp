/**
 * @file
 * Campaign CLI: load a declarative spec, execute every task, and emit
 * the results as JSON (stdout or --json FILE) and optionally CSV.
 *
 * Three execution modes:
 *
 *  - In-process (default): every task runs on one local
 *    work-stealing pool with adaptive shot allocation.
 *  - Coordinator (--spool DIR, or `spool =` in the spec): the run is
 *    sharded through a filesystem spool. The coordinator compiles
 *    every artifact once into the spool's shared store, publishes
 *    chunk-range shards, and merges worker records — bit-identical
 *    to an in-process run. --workers N forks N local worker
 *    processes alongside the coordinator; external workers on any
 *    machine sharing the directory may join at any time.
 *  - Worker (--worker --spool DIR): claim and execute shards until
 *    the coordinator marks the spool DONE.
 *
 * With --checkpoint FILE the runner resumes completed tasks from a
 * previous interrupted run and re-saves the checkpoint after every
 * finished task, so long sweeps survive preemption.
 *
 * Run: ./campaign_runner [spec-file] [--threads N] [--json FILE]
 *      [--csv FILE] [--checkpoint FILE] [--quiet]
 *      [--spool DIR] [--workers N] [--lease SECONDS]
 *      [--max-claim-reclaims N] [--retry-attempts N]
 *      [--retry-base-ms MS] [--self-execute]
 *      [--worker] [--worker-id NAME] [--worker-shards N] [--promote]
 *
 * Failover: `--coordinator-takeover --spool DIR` resumes a crashed
 * coordinator's campaign. The spec is read back from the spool
 * itself (no spec file needed), the stale coordinator lease is
 * waited out and stolen, finalized tasks are restored from the merge
 * journal, surviving records are re-merged, and any missing shards
 * are re-executed in-process (self-execute is implied). Workers may
 * keep running throughout; `--promote` makes a worker perform the
 * same takeover automatically when the coordinator dies.
 *
 * Without a spec file a built-in demo campaign runs the paper's
 * [[72,12,6]] BB code under Cyclone vs the baseline grid across three
 * physical error rates (six tasks).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/cyclone.h"

using namespace cyclone;

namespace {

const char* kDemoSpec = R"(# Built-in demo: fig14-style Cyclone-vs-baseline sweep on bb72.
name = demo-bb72
seed = 7

[task]
code = bb72
arch = cyclone, baseline
p = 1e-3, 2e-3, 4e-3
chunk_shots = 128
chunks_per_wave = 2
max_shots = 800
target_rel_err = 0.1
bp = minsum
)";

void
usage(const char* prog)
{
    std::fprintf(stderr,
                 "usage: %s [spec-file] [--threads N] [--json FILE] "
                 "[--csv FILE] [--checkpoint FILE] [--quiet]\n"
                 "       [--spool DIR] [--workers N] [--lease SECONDS]"
                 " [--max-claim-reclaims N]\n"
                 "       [--retry-attempts N] [--retry-base-ms MS] "
                 "[--self-execute]\n"
                 "       %s --worker --spool DIR [--threads N] "
                 "[--worker-id NAME] [--worker-shards N] [--promote]\n"
                 "       %s --coordinator-takeover --spool DIR "
                 "[spec-file] [--threads N] [--json FILE]\n",
                 prog, prog, prog);
}

std::string
readWholeFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open campaign spec: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string spec_path;
    std::string json_path;
    std::string csv_path;
    std::string checkpoint_path;
    std::string spool_dir;
    std::string worker_id;
    size_t threads_override = 0;
    bool has_threads_override = false;
    size_t workers_override = 0;
    bool has_workers_override = false;
    double lease_override = 0.0;
    size_t worker_shards = 0;
    bool worker_mode = false;
    bool die_after_claim = false;
    bool promote = false;
    bool takeover = false;
    bool self_execute = false;
    size_t max_claim_reclaims = 0;
    bool has_max_claim_reclaims = false;
    size_t retry_attempts = 0;
    double retry_base_ms = -1.0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads") {
            threads_override =
                static_cast<size_t>(std::atoll(next()));
            has_threads_override = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--checkpoint") {
            checkpoint_path = next();
        } else if (arg == "--spool") {
            spool_dir = next();
        } else if (arg == "--workers") {
            workers_override =
                static_cast<size_t>(std::atoll(next()));
            has_workers_override = true;
        } else if (arg == "--lease") {
            lease_override = std::atof(next());
        } else if (arg == "--worker") {
            worker_mode = true;
        } else if (arg == "--worker-id") {
            worker_id = next();
        } else if (arg == "--worker-shards") {
            worker_shards = static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--die-after-claim") {
            // Undocumented test hook: claim one shard, then exit
            // without completing it (exercises lease reclaim).
            die_after_claim = true;
        } else if (arg == "--promote") {
            promote = true;
        } else if (arg == "--coordinator-takeover") {
            takeover = true;
        } else if (arg == "--self-execute") {
            self_execute = true;
        } else if (arg == "--max-claim-reclaims") {
            max_claim_reclaims =
                static_cast<size_t>(std::atoll(next()));
            has_max_claim_reclaims = true;
        } else if (arg == "--retry-attempts") {
            retry_attempts = static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--retry-base-ms") {
            retry_base_ms = std::atof(next());
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            spec_path = arg;
        }
    }

    if (worker_mode) {
        if (spool_dir.empty()) {
            std::fprintf(stderr,
                         "error: --worker needs --spool DIR\n");
            return 2;
        }
        WorkerOptions opts;
        opts.spool = spool_dir;
        opts.threads = threads_override;
        opts.workerId = worker_id;
        opts.maxShards = worker_shards;
        opts.dieAfterClaim = die_after_claim;
        opts.promote = promote;
        try {
            const WorkerReport report = runSpoolWorker(opts);
            if (!quiet)
                std::fprintf(
                    stderr,
                    "[worker] %zu shards, %zu shots, compile "
                    "store hits %zu / built %zu, dem store hits "
                    "%zu / built %zu\n",
                    report.shardsRun, report.shots,
                    report.cache.compileStoreHits,
                    report.cache.compileMisses -
                        report.cache.compileStoreHits,
                    report.cache.demStoreHits,
                    report.cache.demMisses -
                        report.cache.demStoreHits);
        } catch (const std::exception& ex) {
            std::fprintf(stderr, "worker error: %s\n", ex.what());
            return 1;
        }
        return 0;
    }

    if (takeover && spool_dir.empty()) {
        std::fprintf(stderr,
                     "error: --coordinator-takeover needs --spool "
                     "DIR\n");
        return 2;
    }

    CampaignSpec spec;
    std::string spec_text;
    try {
        if (takeover && spec_path.empty()) {
            // Take over with nothing but the spool: the dead
            // coordinator published the verbatim spec text there.
            Spool spool(spool_dir);
            if (!spool.initialized())
                throw std::runtime_error(
                    "no initialized spool to take over at " +
                    spool_dir);
            spec_text = spool.readSpecText();
        } else {
            spec_text = spec_path.empty() ? kDemoSpec
                                          : readWholeFile(spec_path);
        }
        spec = parseCampaignSpec(spec_text);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 1;
    }
    // CLI overrides touch only campaign-level scheduling fields, so
    // workers re-parsing the published spec text still resolve the
    // same task identities and content hashes.
    if (has_threads_override)
        spec.threads = threads_override;
    if (!spool_dir.empty())
        spec.spool = spool_dir;
    if (has_workers_override)
        spec.workers = workers_override;
    if (lease_override > 0.0)
        spec.leaseSeconds = lease_override;
    if (has_max_claim_reclaims)
        spec.maxClaimReclaims = max_claim_reclaims;
    if (retry_attempts > 0)
        spec.retryAttempts = retry_attempts;
    if (retry_base_ms >= 0.0)
        spec.retryBaseMs = retry_base_ms;
    if (takeover) {
        // A takeover must be able to finish alone: the workers that
        // served the dead coordinator may be gone too.
        self_execute = true;
        spec.spool = spool_dir;
        spec.workers = 0;
    }

    CampaignCheckpoint checkpoint;
    const CampaignCheckpoint* resume = nullptr;
    if (!checkpoint_path.empty() &&
        loadCheckpoint(checkpoint_path, checkpoint)) {
        resume = &checkpoint;
        if (!quiet)
            std::fprintf(stderr, "resuming %zu tasks from %s\n",
                         checkpoint.tasks.size(),
                         checkpoint_path.c_str());
    }

    // Incremental checkpointing: re-save after every finished task.
    CampaignResult partial;
    auto on_task_done = [&](const TaskResult& t) {
        if (!quiet)
            std::fprintf(
                stderr,
                "  %-32s %s shots=%zu failures=%zu ler=%.3g "
                "trivial=%.0f%% memo=%.1f%% bp_iters=%.1f%s\n",
                t.id.c_str(),
                t.error.empty() ? "done " : "FAIL ",
                t.logicalErrorRate.trials,
                t.logicalErrorRate.successes, t.logicalErrorRate.rate,
                100.0 * t.decoder.trivialFraction(),
                100.0 * t.decoder.memoHitRate(),
                t.decoder.meanBpIterations(),
                t.fromCheckpoint
                    ? " (checkpoint)"
                    : (t.stoppedEarly ? " (early stop)" : ""));
        if (!checkpoint_path.empty()) {
            partial.tasks.push_back(t);
            saveCheckpoint(partial, checkpoint_path);
        }
    };

    CampaignResult result;
    std::vector<pid_t> children;
    try {
        if (!spec.spool.empty()) {
            // Fork local workers BEFORE the coordinator runs: the
            // coordinator is deliberately thread-free, so forking
            // here is safe, and the children never return into the
            // coordinator path.
            for (size_t w = 0; w < spec.workers; ++w) {
                const pid_t pid = ::fork();
                if (pid == 0) {
                    WorkerOptions opts;
                    opts.spool = spec.spool;
                    opts.threads = spec.threads;
                    opts.workerId =
                        "local" + std::to_string(w);
                    int rc = 0;
                    try {
                        runSpoolWorker(opts);
                    } catch (const std::exception& ex) {
                        std::fprintf(stderr, "worker error: %s\n",
                                     ex.what());
                        rc = 1;
                    }
                    ::_exit(rc);
                }
                if (pid > 0)
                    children.push_back(pid);
            }
            CoordinatorOptions copts;
            copts.selfExecute = self_execute;
            copts.threads = spec.threads;
            result = runDistributedCampaign(spec, spec_text, resume,
                                            on_task_done, copts);
        } else {
            result = runCampaign(spec, resume, on_task_done);
        }
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        for (const pid_t pid : children)
            ::waitpid(pid, nullptr, 0);
        return 1;
    }
    for (const pid_t pid : children)
        ::waitpid(pid, nullptr, 0);

    if (!quiet) {
        BpOsdStats decoder;
        for (const TaskResult& t : result.tasks) {
            decoder.decodes += t.decoder.decodes;
            decoder.trivialShots += t.decoder.trivialShots;
            decoder.memoHits += t.decoder.memoHits;
            decoder.bpIterations += t.decoder.bpIterations;
            decoder.waveGroups += t.decoder.waveGroups;
            decoder.waveLaneSlots += t.decoder.waveLaneSlots;
            decoder.waveLanesFilled += t.decoder.waveLanesFilled;
            decoder.stagedChunks += t.decoder.stagedChunks;
            if (decoder.backend.empty())
                decoder.backend = t.decoder.backend;
        }
        std::fprintf(stderr,
                     "[%s] %zu tasks, %zu shots, wall %.1fs, compile "
                     "cache %zu hit / %zu miss (%zu store, %zu B), "
                     "dem cache %zu hit / %zu miss (%zu store, %zu "
                     "B), decoder trivial %.1f%% / memo %.1f%% "
                     "/ mean BP iters %.1f / wave occupancy %.0f%% "
                     "[backend %s, staged chunks %zu]\n",
                     result.name.c_str(), result.tasks.size(),
                     result.totalShots(), result.wallSeconds,
                     result.cache.compileHits,
                     result.cache.compileMisses,
                     result.cache.compileStoreHits,
                     result.cache.compileBytes, result.cache.demHits,
                     result.cache.demMisses,
                     result.cache.demStoreHits, result.cache.demBytes,
                     100.0 * decoder.trivialFraction(),
                     100.0 * decoder.memoHitRate(),
                     decoder.meanBpIterations(),
                     100.0 * decoder.waveLaneOccupancy(),
                     decoder.backend.empty() ? "checkpoint"
                                             : decoder.backend.c_str(),
                     decoder.stagedChunks);
        StreamDecodeStats streaming;
        size_t streamed_tasks = 0;
        for (const TaskResult& t : result.tasks) {
            if (!t.streamed)
                continue;
            ++streamed_tasks;
            streaming.merge(t.stream);
        }
        if (streamed_tasks > 0) {
            streaming.computePercentiles();
            std::fprintf(stderr,
                         "[streaming] %zu tasks, %zu windows, latency "
                         "p50 %.1fus / p99 %.1fus / p999 %.1fus / max "
                         "%.1fus, %zu deadline misses (%.2f%%), slab "
                         "occupancy %.0f%%, flushes %zu full / %zu "
                         "deadline / %zu final\n",
                         streamed_tasks, streaming.windows,
                         streaming.p50Us, streaming.p99Us,
                         streaming.p999Us, streaming.latencyMaxUs,
                         streaming.deadlineMisses,
                         100.0 * streaming.deadlineMissFraction(),
                         100.0 * streaming.slabOccupancy(),
                         streaming.flushesFull, streaming.flushesDeadline,
                         streaming.flushesFinal);
        }
        if (!spec.spool.empty()) {
            std::fprintf(stderr,
                         "[spool] %zu shards published, %zu merged, "
                         "%zu reclaimed, %zu records reused, "
                         "%zu journal restores\n",
                         result.spool.shardsPublished,
                         result.spool.shardsMerged,
                         result.spool.shardsReclaimed,
                         result.spool.recordsReused,
                         result.spool.journalRestores);
            std::fprintf(stderr,
                         "[spool] health: %zu workers healthy, %zu "
                         "degraded, %zu lost; %zu takeovers, %zu "
                         "transient retries, %zu quarantined, %zu "
                         "poisoned\n",
                         result.spool.workersHealthy,
                         result.spool.workersDegraded,
                         result.spool.workersLost,
                         result.spool.coordinatorTakeovers,
                         result.spool.transientRetries,
                         result.spool.recordsQuarantined,
                         result.spool.shardsPoisoned);
        }
    }

    const std::string json = campaignResultToJson(result);
    if (json_path.empty()) {
        std::fputs(json.c_str(), stdout);
    } else if (!writeTextFile(json_path, json)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    if (!csv_path.empty() &&
        !writeTextFile(csv_path, campaignResultToCsv(result))) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     csv_path.c_str());
        return 1;
    }

    int failures = 0;
    for (const TaskResult& t : result.tasks)
        if (!t.error.empty())
            ++failures;
    return failures > 0 ? 1 : 0;
}
