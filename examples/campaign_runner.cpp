/**
 * @file
 * Campaign CLI: load a declarative spec, execute every task on one
 * shared work-stealing pool with adaptive shot allocation, and emit
 * the results as JSON (stdout or --json FILE) and optionally CSV.
 *
 * With --checkpoint FILE the runner resumes completed tasks from a
 * previous interrupted run and re-saves the checkpoint after every
 * finished task, so long sweeps survive preemption.
 *
 * Run: ./campaign_runner [spec-file] [--threads N] [--json FILE]
 *      [--csv FILE] [--checkpoint FILE] [--quiet]
 *
 * Without a spec file a built-in demo campaign runs the paper's
 * [[72,12,6]] BB code under Cyclone vs the baseline grid across three
 * physical error rates (six tasks).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cyclone.h"

using namespace cyclone;

namespace {

const char* kDemoSpec = R"(# Built-in demo: fig14-style Cyclone-vs-baseline sweep on bb72.
name = demo-bb72
seed = 7

[task]
code = bb72
arch = cyclone, baseline
p = 1e-3, 2e-3, 4e-3
chunk_shots = 128
chunks_per_wave = 2
max_shots = 800
target_rel_err = 0.1
bp = minsum
)";

void
usage(const char* prog)
{
    std::fprintf(stderr,
                 "usage: %s [spec-file] [--threads N] [--json FILE] "
                 "[--csv FILE] [--checkpoint FILE] [--quiet]\n",
                 prog);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string spec_path;
    std::string json_path;
    std::string csv_path;
    std::string checkpoint_path;
    size_t threads_override = 0;
    bool has_threads_override = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads") {
            threads_override =
                static_cast<size_t>(std::atoll(next()));
            has_threads_override = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--checkpoint") {
            checkpoint_path = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            spec_path = arg;
        }
    }

    CampaignSpec spec;
    try {
        spec = spec_path.empty() ? parseCampaignSpec(kDemoSpec)
                                 : loadCampaignSpec(spec_path);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 1;
    }
    if (has_threads_override)
        spec.threads = threads_override;

    CampaignCheckpoint checkpoint;
    const CampaignCheckpoint* resume = nullptr;
    if (!checkpoint_path.empty() &&
        loadCheckpoint(checkpoint_path, checkpoint)) {
        resume = &checkpoint;
        if (!quiet)
            std::fprintf(stderr, "resuming %zu tasks from %s\n",
                         checkpoint.tasks.size(),
                         checkpoint_path.c_str());
    }

    // Incremental checkpointing: re-save after every finished task.
    CampaignResult partial;
    auto on_task_done = [&](const TaskResult& t) {
        if (!quiet)
            std::fprintf(
                stderr,
                "  %-32s %s shots=%zu failures=%zu ler=%.3g "
                "trivial=%.0f%% memo=%.1f%% bp_iters=%.1f%s\n",
                t.id.c_str(),
                t.error.empty() ? "done " : "FAIL ",
                t.logicalErrorRate.trials,
                t.logicalErrorRate.successes, t.logicalErrorRate.rate,
                100.0 * t.decoder.trivialFraction(),
                100.0 * t.decoder.memoHitRate(),
                t.decoder.meanBpIterations(),
                t.fromCheckpoint
                    ? " (checkpoint)"
                    : (t.stoppedEarly ? " (early stop)" : ""));
        if (!checkpoint_path.empty()) {
            partial.tasks.push_back(t);
            saveCheckpoint(partial, checkpoint_path);
        }
    };

    CampaignResult result;
    try {
        result = runCampaign(spec, resume, on_task_done);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 1;
    }

    if (!quiet) {
        BpOsdStats decoder;
        for (const TaskResult& t : result.tasks) {
            decoder.decodes += t.decoder.decodes;
            decoder.trivialShots += t.decoder.trivialShots;
            decoder.memoHits += t.decoder.memoHits;
            decoder.bpIterations += t.decoder.bpIterations;
            decoder.waveGroups += t.decoder.waveGroups;
            decoder.waveLaneSlots += t.decoder.waveLaneSlots;
            decoder.waveLanesFilled += t.decoder.waveLanesFilled;
            decoder.stagedChunks += t.decoder.stagedChunks;
            if (decoder.backend.empty())
                decoder.backend = t.decoder.backend;
        }
        std::fprintf(stderr,
                     "[%s] %zu tasks, %zu shots, wall %.1fs, compile "
                     "cache %zu hit / %zu miss, dem cache %zu hit / "
                     "%zu miss, decoder trivial %.1f%% / memo %.1f%% "
                     "/ mean BP iters %.1f / wave occupancy %.0f%% "
                     "[backend %s, staged chunks %zu]\n",
                     result.name.c_str(), result.tasks.size(),
                     result.totalShots(), result.wallSeconds,
                     result.cache.compileHits,
                     result.cache.compileMisses, result.cache.demHits,
                     result.cache.demMisses,
                     100.0 * decoder.trivialFraction(),
                     100.0 * decoder.memoHitRate(),
                     decoder.meanBpIterations(),
                     100.0 * decoder.waveLaneOccupancy(),
                     decoder.backend.empty() ? "checkpoint"
                                             : decoder.backend.c_str(),
                     decoder.stagedChunks);
    }

    const std::string json = campaignResultToJson(result);
    if (json_path.empty()) {
        std::fputs(json.c_str(), stdout);
    } else if (!writeTextFile(json_path, json)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    if (!csv_path.empty() &&
        !writeTextFile(csv_path, campaignResultToCsv(result))) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     csv_path.c_str());
        return 1;
    }

    int failures = 0;
    for (const TaskResult& t : result.tasks)
        if (!t.error.empty())
            ++failures;
    return failures > 0 ? 1 : 0;
}
