/**
 * @file
 * Quickstart: compile one syndrome round of a bivariate bicycle code
 * under the baseline grid and under Cyclone, then couple both
 * latencies into hardware-aware memory experiments and compare
 * logical error rates.
 *
 * Run: ./quickstart [code-name] (default bb72; see
 * cyclone::catalog::names() for options)
 */

#include <cstdio>
#include <string>

#include "core/cyclone.h"

using namespace cyclone;

namespace {

void
printCompile(const char* label, const CompileResult& r)
{
    std::printf("  %-14s exec %8.1f ms | traps %3zu | ancilla %3zu | "
                "trap-roadblocks %4zu | junction-roadblocks %4zu\n",
                label, r.execTimeUs / 1000.0, r.numTraps, r.numAncilla,
                r.trapRoadblocks, r.junctionRoadblocks);
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string name = argc > 1 ? argv[1] : "bb72";
    CssCode code = catalog::byName(name);
    std::printf("Code: %s — %zu data qubits, %zu stabilizers\n",
                code.name().c_str(), code.numQubits(),
                code.numStabs());

    SyndromeSchedule schedule = makeXThenZSchedule(code);
    std::printf("X-then-Z schedule: %zu CX gates in %zu timeslices\n\n",
                schedule.totalGates(), schedule.depth());

    // ---- Compile one round under both codesigns. ----
    CodesignConfig config;
    config.architecture = Architecture::BaselineGrid;
    CompileResult baseline = compileCodesign(code, schedule, config);
    config.architecture = Architecture::Cyclone;
    CompileResult cyclone_r = compileCodesign(code, schedule, config);

    std::printf("Compiled syndrome-extraction round:\n");
    printCompile("baseline grid", baseline);
    printCompile("cyclone", cyclone_r);
    std::printf("  speedup %.2fx, spacetime improvement %.1fx\n\n",
                baseline.execTimeUs / cyclone_r.execTimeUs,
                baseline.spacetimeCost() / cyclone_r.spacetimeCost());

    // ---- Memory experiments with latency-coupled noise. ----
    const double p = 1e-3;
    MemoryExperimentConfig exp;
    exp.physicalError = p;
    exp.shots = 400;
    exp.seed = 7;

    exp.roundLatencyUs = baseline.execTimeUs;
    auto baseline_mem = runZMemoryExperiment(code, schedule, exp);
    exp.roundLatencyUs = cyclone_r.execTimeUs;
    auto cyclone_mem = runZMemoryExperiment(code, schedule, exp);

    std::printf("Memory experiment at p = %.0e (%zu rounds, %zu "
                "shots):\n",
                p, baseline_mem.rounds,
                exp.shots);
    std::printf("  baseline grid LER = %.4f +- %.4f\n",
                baseline_mem.logicalErrorRate.rate,
                baseline_mem.logicalErrorRate.stderr);
    std::printf("  cyclone       LER = %.4f +- %.4f\n",
                cyclone_mem.logicalErrorRate.rate,
                cyclone_mem.logicalErrorRate.stderr);
    return 0;
}
